package hmmer

import (
	"fmt"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// Alignment traceback. BandedViterbi returns only the best score; the
// aligned path is needed to stack recruited hits into profile columns for
// the next jackhmmer round (gapped, unlike the diagonal projection), and to
// report alignments to users. The traceback kernel re-runs the banded
// recurrence with backpointer recording — the same split into the
// calc_band_9/calc_band_10 row variants, with the extra write traffic
// reflected in the metering events.

// OpKind is one alignment operation.
type OpKind byte

const (
	// OpMatch consumes one profile column and one target residue.
	OpMatch OpKind = 'M'
	// OpInsert consumes one target residue (between profile columns).
	OpInsert OpKind = 'I'
	// OpDelete consumes one profile column (no target residue).
	OpDelete OpKind = 'D'
)

// AlignedPair is one step of an alignment path.
type AlignedPair struct {
	Op OpKind
	// Col is the profile column (0-based) for match/delete, -1 for insert.
	Col int
	// Pos is the target position (0-based) for match/insert, -1 for delete.
	Pos int
}

// Alignment is a local alignment path in ascending column/position order.
type Alignment struct {
	Score float32
	Pairs []AlignedPair
}

// Validate checks path invariants: operations consume coordinates
// monotonically and stay in bounds.
func (a *Alignment) Validate(profileLen, targetLen int) error {
	lastCol, lastPos := -1, -1
	for i, p := range a.Pairs {
		switch p.Op {
		case OpMatch:
			if p.Col <= lastCol || p.Pos <= lastPos {
				return fmt.Errorf("hmmer: pair %d (M) not monotonic", i)
			}
			lastCol, lastPos = p.Col, p.Pos
		case OpInsert:
			if p.Col != -1 || p.Pos <= lastPos {
				return fmt.Errorf("hmmer: pair %d (I) malformed", i)
			}
			lastPos = p.Pos
		case OpDelete:
			if p.Pos != -1 || p.Col <= lastCol {
				return fmt.Errorf("hmmer: pair %d (D) malformed", i)
			}
			lastCol = p.Col
		default:
			return fmt.Errorf("hmmer: pair %d has unknown op %q", i, p.Op)
		}
		if p.Col >= profileLen || p.Pos >= targetLen {
			return fmt.Errorf("hmmer: pair %d out of bounds", i)
		}
	}
	return nil
}

// Matches returns the number of match operations.
func (a *Alignment) Matches() int {
	n := 0
	for _, p := range a.Pairs {
		if p.Op == OpMatch {
			n++
		}
	}
	return n
}

// backpointer codes for the traceback matrices.
const (
	ptrNone byte = iota // local start
	ptrM
	ptrI
	ptrD
)

// BandedViterbiAlign runs the banded Viterbi recurrence with backpointer
// recording and returns both the score result and the traced alignment of
// the best-scoring cell. It costs roughly the plain kernel plus the pointer
// writes, which the metering events include.
func BandedViterbiAlign(p *Profile, target *seq.Sequence, diagonal, halfWidth int, m metering.Meter) (AlignResult, *Alignment) {
	ws := takeScanWorkspace()
	res, ali := bandedViterbiAlign(p, target, diagonal, halfWidth, ws, m)
	releaseScanWorkspace(ws)
	return res, ali
}

// bandedViterbiAlign is the workspace-backed traceback kernel. The full
// per-row score and pointer history lives in two flat pooled planes (one
// float32 backing array for M/I/D scores, one byte array for the pointers)
// instead of 6·L per-row slices — the allocation behavior that used to
// dominate allocs/op on hit-dense nucleotide scans. Only the returned
// Alignment (retained by the Hit) is freshly allocated.
func bandedViterbiAlign(p *Profile, target *seq.Sequence, diagonal, halfWidth int, ws *scanWorkspace, m metering.Meter) (AlignResult, *Alignment) {
	if m == nil {
		m = metering.Nop{}
	}
	L := target.Len()
	w := 2*halfWidth + 1

	// Flat score/pointer planes, indexed [i*w+b]; the kernel writes every
	// cell of every row it visits, so recycled buffers need no clearing.
	sc, ptrs := ws.tracebackBufs(L * w)
	n := L * w
	mSc, iSc, dSc := sc[:n], sc[n:2*n], sc[2*n:3*n]
	mPtr, iPtr, dPtr := ptrs[:n], ptrs[n:2*n], ptrs[2*n:3*n]

	res := AlignResult{Score: 0}
	var cellsEven, cellsOdd uint64
	bestRow, bestBand := -1, -1

	for i := 0; i < L; i++ {
		r := int(target.Residues[i])
		lo := i + diagonal - halfWidth
		row := i * w
		var cells uint64
		for b := 0; b < w; b++ {
			j := lo + b
			if j < 0 || j >= p.M {
				mSc[row+b], iSc[row+b], dSc[row+b] = negInf, negInf, negInf
				continue
			}
			cells++
			// Previous row's band is shifted one column left: column j-1
			// is slot b, column j is slot b+1 (see calcBandRow).
			diagM, diagI, diagD := negInf, negInf, negInf
			if i > 0 {
				diagM, diagI, diagD = mSc[row-w+b], iSc[row-w+b], dSc[row-w+b]
			}
			upM, upI := negInf, negInf
			if i > 0 && b+1 < w {
				upM, upI = mSc[row-w+b+1], iSc[row-w+b+1]
			}
			leftM, leftD := negInf, negInf
			if b > 0 {
				leftM, leftD = mSc[row+b-1], dSc[row+b-1]
			}

			best, ptr := float32(0), ptrNone
			if diagM > best {
				best, ptr = diagM, ptrM
			}
			if diagI > best {
				best, ptr = diagI, ptrI
			}
			if diagD > best {
				best, ptr = diagD, ptrD
			}
			mSc[row+b] = best + p.Match[j*p.K+r]
			mPtr[row+b] = ptr

			if upM+p.Open >= upI+p.Extend {
				iSc[row+b] = upM + p.Open + p.InsertPenalty
				iPtr[row+b] = ptrM
			} else {
				iSc[row+b] = upI + p.Extend + p.InsertPenalty
				iPtr[row+b] = ptrI
			}
			if leftM+p.Open >= leftD+p.Extend {
				dSc[row+b] = leftM + p.Open
				dPtr[row+b] = ptrM
			} else {
				dSc[row+b] = leftD + p.Extend
				dPtr[row+b] = ptrD
			}

			if mSc[row+b] > res.Score {
				res.Score = mSc[row+b]
				res.EndCol = j
				res.EndRow = i
				bestRow, bestBand = i, b
			}
		}
		if i%2 == 0 {
			cellsEven += cells
		} else {
			cellsOdd += cells
		}
	}
	res.Cells = cellsEven + cellsOdd

	wsBytes := uint64(6*w)*4*uint64(minInt(L, 64)) + p.MemoryBytes() + uint64(L)
	record := func(fn string, cells uint64) {
		if cells == 0 {
			return
		}
		m.Record(metering.Event{
			Func:           fn,
			Instructions:   cells * 17, // recurrence + pointer writes
			Bytes:          cells * 68,
			WorkingSet:     wsBytes,
			Pattern:        metering.Strided,
			Branches:       cells * 5,
			BranchMissRate: 0.004,
		})
	}
	record("calc_band_9", cellsEven)
	record("calc_band_10", cellsOdd)

	ali := &Alignment{Score: res.Score}
	if bestRow < 0 {
		return res, ali
	}

	// Trace back from the best match cell to its local start.
	var rev []AlignedPair
	i, b := bestRow, bestBand
	state := ptrM
	for i >= 0 {
		lo := i + diagonal - halfWidth
		j := lo + b
		switch state {
		case ptrM:
			rev = append(rev, AlignedPair{Op: OpMatch, Col: j, Pos: i})
			prev := mPtr[i*w+b]
			if prev == ptrNone {
				i = -1 // local start
				break
			}
			state = prev
			// Diagonal move: previous row, same slot (column j-1).
			i--
		case ptrI:
			rev = append(rev, AlignedPair{Op: OpInsert, Col: -1, Pos: i})
			state = iPtr[i*w+b]
			// Vertical move: previous row, column j = slot b+1 there.
			i--
			b++
		case ptrD:
			rev = append(rev, AlignedPair{Op: OpDelete, Col: j, Pos: -1})
			state = dPtr[i*w+b]
			// Horizontal move: same row, slot b-1.
			b--
		}
		if b < 0 || b >= w {
			break // fell off the band edge; path ends here
		}
	}
	// Reverse into ascending order.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	ali.Pairs = rev
	return res, ali
}

// BuildGappedAlignment stacks hits into profile-column rows using their
// traced alignments: matched target residues land in their aligned columns,
// deletions leave gaps, insertions are dropped (standard profile-column
// semantics). Hits without a traced alignment fall back to the ungapped
// diagonal projection. Row 0 is the query.
func BuildGappedAlignment(query *seq.Sequence, hits []Hit, inclusionE float64) [][]byte {
	rows := [][]byte{append([]byte(nil), query.Residues...)}
	for _, h := range hits {
		if h.EValue > inclusionE {
			continue
		}
		row := make([]byte, query.Len())
		for col := range row {
			row[col] = GapResidue
		}
		if h.Alignment != nil && len(h.Alignment.Pairs) > 0 {
			for _, pr := range h.Alignment.Pairs {
				if pr.Op == OpMatch && pr.Col >= 0 && pr.Col < len(row) {
					row[pr.Col] = h.Target.Residues[pr.Pos]
				}
			}
		} else {
			for col := range row {
				tpos := col - h.Diagonal
				if tpos >= 0 && tpos < h.Target.Len() {
					row[col] = h.Target.Residues[tpos]
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
