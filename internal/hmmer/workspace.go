package hmmer

import (
	"sync"

	"afsysbench/internal/seq"
)

// scanWorkspace owns every piece of reusable scratch the per-record scan
// cascade needs: the MSV diagonal run buffer, the two banded-Viterbi DP
// rows, the Forward rows, the seed-vote map and candidate-diagonal slice,
// the hit-dedup set, and the long-target window header. One workspace
// serves one scan at a time; scanDB takes one from a sync.Pool per pass
// (so each msa worker shard reuses the buffers of earlier shards instead
// of reallocating them per database record), and every buffer grows
// monotonically to the largest record seen.
type scanWorkspace struct {
	run        []float32 // MSV Kadane state, one slot per diagonal
	swar       []uint64  // packed 8-bit MSV state, one lane per profile column
	rowA, rowB dpRows    // banded Viterbi row pair
	fwdA, fwdB []float64 // Forward row pair
	tbSc       []float32 // traceback score planes (M/I/D), flattened L×w
	tbPtr      []byte    // traceback pointer planes (M/I/D), flattened L×w
	votes      map[int]int
	diags      []int
	seen       map[string]bool
	window     seq.Sequence // reusable long-target window header
}

var scanWSPool = sync.Pool{New: func() any {
	return &scanWorkspace{
		votes: make(map[int]int),
		seen:  make(map[string]bool),
	}
}}

func takeScanWorkspace() *scanWorkspace { return scanWSPool.Get().(*scanWorkspace) }

func releaseScanWorkspace(ws *scanWorkspace) { scanWSPool.Put(ws) }

// msvRun returns the diagonal run buffer sized for n diagonals, zeroed.
// Only the touched prefix is cleared: a fresh allocation arrives zeroed,
// and a recycled buffer is re-zeroed over exactly the n slots the previous
// target may have dirtied beyond wherever this target will write.
func (ws *scanWorkspace) msvRun(n int) []float32 {
	if cap(ws.run) < n {
		ws.run = make([]float32, n)
		return ws.run
	}
	run := ws.run[:n]
	for i := range run {
		run[i] = 0
	}
	return run
}

// swarRun returns the packed SWAR lane buffer sized for n words, zeroed.
func (ws *scanWorkspace) swarRun(n int) []uint64 {
	if cap(ws.swar) < n {
		ws.swar = make([]uint64, n)
		return ws.swar
	}
	run := ws.swar[:n]
	for i := range run {
		run[i] = 0
	}
	return run
}

// tracebackBufs returns the flattened traceback planes sized for n cells
// each (three score planes, three pointer planes, sharing one allocation
// apiece). The traceback kernel overwrites every cell it later reads, so no
// clearing happens here.
func (ws *scanWorkspace) tracebackBufs(n int) (sc []float32, ptr []byte) {
	if cap(ws.tbSc) < 3*n {
		ws.tbSc = make([]float32, 3*n)
	}
	if cap(ws.tbPtr) < 3*n {
		ws.tbPtr = make([]byte, 3*n)
	}
	return ws.tbSc[:3*n], ws.tbPtr[:3*n]
}

// bandRows returns the two DP row sets sized for band width w.
func (ws *scanWorkspace) bandRows(w int) (prev, cur *dpRows) {
	ws.rowA.ensure(w)
	ws.rowB.ensure(w)
	return &ws.rowA, &ws.rowB
}

// forwardRows returns the two Forward rows sized for band width w. The
// kernel initializes them itself, so no clearing happens here.
func (ws *scanWorkspace) forwardRows(w int) (prev, cur []float64) {
	if cap(ws.fwdA) < w {
		ws.fwdA = make([]float64, w)
		ws.fwdB = make([]float64, w)
	}
	return ws.fwdA[:w], ws.fwdB[:w]
}

// seedScratch returns the cleared vote map and the empty candidate slice.
func (ws *scanWorkspace) seedScratch() (map[int]int, []int) {
	clear(ws.votes)
	return ws.votes, ws.diags[:0]
}

// dedupSeen returns the cleared per-scan hit-dedup set.
func (ws *scanWorkspace) dedupSeen() map[string]bool {
	clear(ws.seen)
	return ws.seen
}
