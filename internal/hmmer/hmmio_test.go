package hmmer

import (
	"bytes"
	"testing"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

func TestProfileRoundTrip(t *testing.T) {
	g := protGen(61)
	q := g.Random("roundtrip", seq.Protein, 120)
	p, err := BuildFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteProfile(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Type != p.Type || got.M != p.M || got.K != p.K {
		t.Fatalf("metadata mismatched: %+v vs %+v", got, p)
	}
	if got.Lambda != p.Lambda || got.Mu != p.Mu {
		t.Error("calibration parameters mismatched")
	}
	if got.InsertPenalty != p.InsertPenalty || got.Open != p.Open || got.Extend != p.Extend {
		t.Error("gap parameters mismatched")
	}
	for i := range p.Match {
		if got.Match[i] != p.Match[i] {
			t.Fatalf("match score %d mismatched", i)
		}
	}
	// A loaded profile must score identically to the original.
	target := g.Mutate(q, "t", 0.2)
	a := BandedViterbi(p, target, 0, BandHalfWidth, metering.Nop{})
	b := BandedViterbi(got, target, 0, BandHalfWidth, metering.Nop{})
	if a.Score != b.Score {
		t.Errorf("loaded profile scores %v, original %v", b.Score, a.Score)
	}
}

func TestProfileRoundTripRNA(t *testing.T) {
	g := seq.NewGenerator(protGenSrc(62))
	q := g.Random("rna", seq.RNA, 80)
	p, err := BuildFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteProfile(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != 4 || got.Type != seq.RNA {
		t.Errorf("RNA profile wrong: K=%d type=%v", got.K, got.Type)
	}
}

func TestReadProfileRejectsCorrupt(t *testing.T) {
	if _, err := ReadProfile(bytes.NewReader([]byte("XXXX000000000"))); err == nil {
		t.Error("bad magic accepted")
	}
	g := protGen(63)
	p, _ := BuildFromQuery(g.Random("q", seq.Protein, 50))
	var buf bytes.Buffer
	_ = p.WriteProfile(&buf)
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadProfile(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated profile accepted")
	}
	// Corrupt the molecule type so K mismatches the alphabet.
	img := append([]byte(nil), buf.Bytes()...)
	img[6] = 3 // ligand
	if _, err := ReadProfile(bytes.NewReader(img)); err == nil {
		t.Error("inconsistent type/K accepted")
	}
}
