package hmmer

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"

	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// SearchOptions configures a database search.
type SearchOptions struct {
	// MaxEValue is the reporting threshold (default 10).
	MaxEValue float64
	// InclusionEValue is the profile-recruitment threshold for iterative
	// search rounds (default 1e-3).
	InclusionEValue float64
	// HalfWidth is the Viterbi band half-width (default BandHalfWidth).
	HalfWidth int
	// Iterations is the number of jackhmmer rounds (default 2).
	Iterations int
	// SeedK is the k-mer seed length (default 3 for protein, 5 for
	// nucleotide).
	SeedK int
	// MinSeeds is the votes a diagonal needs before it is DP'd (default 2).
	MinSeeds int
	// MaxDiagonals caps candidate diagonals per target (default 64). The
	// cap is what keeps poly-Q queries from unbounded blowup — but each
	// capped diagonal still costs a full banded DP, which is the promo
	// sample's slowdown mechanism.
	MaxDiagonals int
	// DisableSeedFilter forces banded DP on every target's best MSV
	// diagonal instead of seed candidates (the "no prefilter" ablation arm).
	DisableSeedFilter bool
	// DisableSWAR turns off the packed 8-bit reject-only pre-filters
	// (msvFilterSWAR, bandSSVSWAR) and runs the PR-4 float32 cascade alone.
	// The zero value keeps SWAR on; the AFSYSBENCH_NO_SWAR environment
	// variable forces it off process-wide (the kill switch).
	DisableSWAR bool
	// ReportAllDomains keeps every significant band of a target as its own
	// hit (HMMER's per-domain envelopes) instead of deduplicating to the
	// best band per target.
	ReportAllDomains bool
	// DBFootprint is the modeled byte size of the database (for the
	// buffering layer's working-set accounting).
	DBFootprint uint64
}

func (o SearchOptions) withDefaults(t seq.MoleculeType) SearchOptions {
	if o.MaxEValue == 0 {
		o.MaxEValue = 10
	}
	if o.InclusionEValue == 0 {
		o.InclusionEValue = 1e-3
	}
	if o.HalfWidth == 0 {
		o.HalfWidth = BandHalfWidth
	}
	if o.Iterations == 0 {
		o.Iterations = 2
	}
	if o.SeedK == 0 {
		// Chosen so the expected random k-mer collision rate is similar
		// across alphabets: 20^3 for protein, 4^8 for nucleotides.
		if t == seq.Protein {
			o.SeedK = 3
		} else {
			o.SeedK = 8
		}
	}
	if o.MinSeeds == 0 {
		// Protein seeds need corroboration; nucleotide search keeps
		// nhmmer's sensitivity by aligning every seeded window, which is
		// exactly why RNA search is so expensive (paper Section VII).
		if t == seq.Protein {
			o.MinSeeds = 2
		} else {
			o.MinSeeds = 1
		}
	}
	if o.MaxDiagonals == 0 {
		o.MaxDiagonals = 64
	}
	if noSWAREnv() {
		o.DisableSWAR = true
	}
	return o
}

// noSWAREnv reads the process-wide SWAR kill switch once: setting
// AFSYSBENCH_NO_SWAR (to anything non-empty) pins every search in the
// process to the float32 cascade, no matter what options callers build.
var noSWAREnv = sync.OnceValue(func() bool {
	return os.Getenv("AFSYSBENCH_NO_SWAR") != ""
})

// Hit is one reported database match.
type Hit struct {
	TargetID     string
	Target       *seq.Sequence
	Diagonal     int
	ViterbiScore float64
	ForwardScore float64
	Bits         float64
	EValue       float64
	// Alignment is the traced Viterbi path (nil if tracing was skipped).
	Alignment *Alignment
}

// Result summarizes a search.
type Result struct {
	Query      string
	Hits       []Hit // sorted by ascending E-value
	Scanned    int   // records examined
	Candidates int   // candidate diagonals DP'd
	CellsDP    uint64
	// CellsPruned counts filter-lane visits and DP cells the pruning cascade
	// provably skipped (MSV dead diagonals, cut-off band rows). CellsDP +
	// CellsPruned is not the unpruned volume — MSV lanes are not DP cells —
	// but the split shows how much scan work the cascade avoided.
	CellsPruned uint64
	// LanesRejected counts float-path work units (MSV filter lanes, band DP
	// cells) the SWAR 8-bit pre-passes proved below threshold and disposed
	// of without running the exact kernels. Zero when SWAR is disabled.
	LanesRejected uint64
	Rounds        int
	// Windows counts long-target windows scanned (nucleotide searches).
	Windows int
	// PeakWindowStateBytes is the largest per-target accumulated window
	// state seen — nhmmer's memory driver (Figure 2).
	PeakWindowStateBytes int64
}

// seedIndex maps k-mers of the query to their positions, the BLAST-style
// prefilter that replaces a full-matrix scan. Low-complexity queries hash
// the same k-mer to many positions, which is exactly how repetitive
// sequence (poly-Q) inflates candidate diagonals downstream.
type seedIndex struct {
	k        int
	alphaLen int
	pos      map[uint32][]int32
}

func buildSeedIndex(q *seq.Sequence, k int) *seedIndex {
	idx := &seedIndex{k: k, alphaLen: len(q.Type.Alphabet()), pos: make(map[uint32][]int32)}
	if q.Len() < k {
		return idx
	}
	// Hash the first window in full, then roll: each subsequent window is
	// O(1) instead of O(k), and the value is identical (the polynomial hash
	// is exact under uint32 wraparound).
	h := idx.hash(q.Residues[:k])
	idx.pos[h] = append(idx.pos[h], 0)
	top := idx.topWeight()
	for i := 1; i+k <= q.Len(); i++ {
		h = idx.roll(h, q.Residues[i-1], q.Residues[i+k-1], top)
		idx.pos[h] = append(idx.pos[h], int32(i))
	}
	return idx
}

func (idx *seedIndex) hash(kmer []byte) uint32 {
	var h uint32
	for _, r := range kmer {
		h = h*uint32(idx.alphaLen) + uint32(r)
	}
	return h
}

// topWeight returns alphaLen^(k-1) mod 2³² — the weight of the leading
// residue in the polynomial hash.
func (idx *seedIndex) topWeight() uint32 {
	w := uint32(1)
	for i := 1; i < idx.k; i++ {
		w *= uint32(idx.alphaLen)
	}
	return w
}

// roll slides a window hash one position right: drop `out`, append `in`.
// All arithmetic wraps mod 2³², so the result equals hash() of the shifted
// window exactly.
func (idx *seedIndex) roll(h uint32, out, in byte, top uint32) uint32 {
	return (h-uint32(out)*top)*uint32(idx.alphaLen) + uint32(in)
}

// candidates returns the merged candidate diagonals for a target, recording
// the seed-scan work. Diagonals closer than mergeDist collapse into one.
// With a workspace, the vote map and diagonal slice are recycled scratch and
// the returned slice is only valid until the workspace's next use; ws may be
// nil for standalone calls.
func (idx *seedIndex) candidates(target *seq.Sequence, minSeeds, maxDiag, mergeDist int, ws *scanWorkspace, m metering.Meter) []int {
	L := target.Len()
	if L < idx.k {
		return nil
	}
	var votes map[int]int
	var scratch []int
	if ws != nil {
		votes, scratch = ws.seedScratch()
	} else {
		votes = make(map[int]int)
	}
	var probes uint64
	h := idx.hash(target.Residues[:idx.k])
	top := idx.topWeight()
	for i := 0; i+idx.k <= L; i++ {
		if i > 0 {
			h = idx.roll(h, target.Residues[i-1], target.Residues[i+idx.k-1], top)
		}
		for _, qp := range idx.pos[h] {
			votes[int(qp)-i]++
			probes++
		}
	}
	// Probe work scales with posting-list traffic: low-complexity queries
	// hash many positions to the same k-mer, so repetitive targets walk
	// long posting lists — the seed-stage half of the promo blowup.
	m.Record(metering.Event{
		Func:         "seed_filter",
		Instructions: uint64(L)*6 + probes*8,
		Bytes:        uint64(L)*12 + probes*16,
		WorkingSet:   uint64(len(idx.pos))*16 + uint64(L),
		Pattern:      metering.Random, // hash-table probes
		Branches:     uint64(L)*2 + probes,
		// Hash probe hit/miss is data-dependent and poorly predicted.
		BranchMissRate: 0.010,
	})
	diags := scratch
	if diags == nil {
		diags = make([]int, 0, len(votes))
	}
	for d, v := range votes {
		if v >= minSeeds {
			diags = append(diags, d)
		}
	}
	sort.Ints(diags)
	// Merge nearby diagonals into band-sized clusters. The cluster span is
	// bounded by mergeDist (one band can only cover that many diagonals),
	// so a repeat-rich target that lights up hundreds of diagonals still
	// yields dozens of separate bands to align — the DP-stage half of the
	// promo blowup.
	merged := diags[:0]
	for i := 0; i < len(diags); {
		j := i
		for j+1 < len(diags) && diags[j+1]-diags[i] <= mergeDist {
			j++
		}
		merged = append(merged, diags[(i+j)/2])
		i = j + 1
	}
	if len(merged) > maxDiag {
		merged = merged[:maxDiag]
	}
	if ws != nil {
		ws.diags = diags // keep the (possibly grown) backing array
	}
	return merged
}

// SearchProtein runs a jackhmmer-style iterative profile search of query
// against the database records supplied by src. Each round scans the whole
// database; hits below the inclusion threshold are stacked into an
// alignment from which the next round's profile is built.
func SearchProtein(query *seq.Sequence, src func() RecordSource, dbResidues int, opts SearchOptions, m metering.Meter) (*Result, error) {
	return SearchProteinCtx(context.Background(), query, src, dbResidues, opts, m)
}

// SearchProteinCtx is SearchProtein with cancellation: the context is
// observed between iteration rounds and every few records inside the scan,
// so a cancelled search returns promptly with ctx's error instead of
// finishing the remaining rounds.
func SearchProteinCtx(ctx context.Context, query *seq.Sequence, src func() RecordSource, dbResidues int, opts SearchOptions, m metering.Meter) (*Result, error) {
	if query.Type != seq.Protein {
		return nil, fmt.Errorf("hmmer: SearchProtein requires a protein query, got %v", query.Type)
	}
	opts = opts.withDefaults(query.Type)
	if m == nil {
		m = metering.Nop{}
	}
	profile, err := BuildFromQuery(query)
	if err != nil {
		return nil, err
	}
	var res *Result
	for round := 0; round < opts.Iterations; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err = scanDB(ctx, profile, query, src(), dbResidues, opts, m)
		if err != nil {
			return nil, err
		}
		res.Rounds = round + 1
		if round == opts.Iterations-1 {
			break
		}
		rows := BuildGappedAlignment(query, res.Hits, opts.InclusionEValue)
		if len(rows) <= 1 {
			break // nothing recruited; further rounds are identical
		}
		profile, err = BuildFromAlignment(query.ID, query.Type, rows)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// SearchNucleotide runs an nhmmer-style single-pass scan for RNA/DNA
// queries. Long targets are searched in overlapping windows; the per-window
// candidate state is what makes long-query nucleotide search memory-hungry
// (Fig. 2 in the paper).
func SearchNucleotide(query *seq.Sequence, src func() RecordSource, dbResidues int, opts SearchOptions, m metering.Meter) (*Result, error) {
	return SearchNucleotideCtx(context.Background(), query, src, dbResidues, opts, m)
}

// SearchNucleotideCtx is SearchNucleotide with cancellation (see
// SearchProteinCtx).
func SearchNucleotideCtx(ctx context.Context, query *seq.Sequence, src func() RecordSource, dbResidues int, opts SearchOptions, m metering.Meter) (*Result, error) {
	if query.Type != seq.RNA && query.Type != seq.DNA {
		return nil, fmt.Errorf("hmmer: SearchNucleotide requires RNA or DNA, got %v", query.Type)
	}
	opts = opts.withDefaults(query.Type)
	if m == nil {
		m = metering.Nop{}
	}
	profile, err := BuildFromQuery(query)
	if err != nil {
		return nil, err
	}
	res, err := scanDB(ctx, profile, query, src(), dbResidues, opts, m)
	if err != nil {
		return nil, err
	}
	res.Rounds = 1
	return res, nil
}

// ScanRecords runs one search pass of the profile over the records from
// src — the unit of work one worker thread performs on its database shard.
// Callers that parallelize a search shard the database and merge the
// returned results (see the msa package); iteration across rounds stays
// with the caller.
func ScanRecords(p *Profile, query *seq.Sequence, src RecordSource, dbResidues int, opts SearchOptions, m metering.Meter) (*Result, error) {
	return ScanRecordsCtx(context.Background(), p, query, src, dbResidues, opts, m)
}

// ScanRecordsCtx is ScanRecords with cancellation: ctx is checked every
// few records, so a worker shard of a cancelled MSA scan abandons its
// remaining records instead of finishing the pass.
func ScanRecordsCtx(ctx context.Context, p *Profile, query *seq.Sequence, src RecordSource, dbResidues int, opts SearchOptions, m metering.Meter) (*Result, error) {
	opts = opts.withDefaults(query.Type)
	if m == nil {
		m = metering.Nop{}
	}
	return scanDB(ctx, p, query, src, dbResidues, opts, m)
}

// BuildHitAlignment stacks hits below the inclusion threshold into
// profile-column alignment rows (row 0 is the query), the input to
// BuildFromAlignment for the next search round. Hits carrying a traced
// Viterbi path stack gapped; the rest fall back to the ungapped diagonal
// projection.
func BuildHitAlignment(query *seq.Sequence, hits []Hit, inclusionE float64) [][]byte {
	return BuildGappedAlignment(query, hits, inclusionE)
}

// MergeResults combines per-shard results into one, re-sorting by E-value
// and deduplicating by target.
func MergeResults(query string, parts []*Result) *Result {
	merged := &Result{Query: query}
	for _, p := range parts {
		if p == nil {
			continue
		}
		merged.Hits = append(merged.Hits, p.Hits...)
		merged.Scanned += p.Scanned
		merged.Candidates += p.Candidates
		merged.CellsDP += p.CellsDP
		merged.CellsPruned += p.CellsPruned
		merged.LanesRejected += p.LanesRejected
		merged.Windows += p.Windows
		if p.PeakWindowStateBytes > merged.PeakWindowStateBytes {
			merged.PeakWindowStateBytes = p.PeakWindowStateBytes
		}
	}
	sort.Slice(merged.Hits, func(i, j int) bool {
		if merged.Hits[i].EValue != merged.Hits[j].EValue {
			return merged.Hits[i].EValue < merged.Hits[j].EValue
		}
		return merged.Hits[i].TargetID < merged.Hits[j].TargetID
	})
	// A 0- or 1-element hit list is already deduplicated; most shards of a
	// selective search land here, so skip the map allocation for them.
	if len(merged.Hits) > 1 {
		seen := make(map[string]bool, len(merged.Hits))
		uniq := merged.Hits[:0]
		for _, h := range merged.Hits {
			if !seen[h.TargetID] {
				seen[h.TargetID] = true
				uniq = append(uniq, h)
			}
		}
		merged.Hits = uniq
	}
	return merged
}

// scanState carries everything one scan pass shares across records: the
// profile, the seed index, the pooled workspace, precomputed filter
// thresholds, and the accumulating Result. One scanState serves one worker
// shard; it is not safe for concurrent use (each msa worker builds its own,
// drawing a workspace from the shared pool).
type scanState struct {
	p          *Profile
	query      *seq.Sequence
	idx        *seedIndex
	opts       SearchOptions
	dbResidues int
	m          metering.Meter
	ws         *scanWorkspace
	res        *Result
	// bandFloor is the Viterbi score below which the E-value gate provably
	// skips Forward (negInf disarms the band cutoff; see bandScoreFloor).
	bandFloor    float32
	msvThreshold float32
	// swarQ is the profile's packed 8-bit table when the SWAR pre-filters
	// are armed (transposed layout present, quantization sound, kill switch
	// off); nil routes everything straight to the float32 cascade.
	swarQ *quantProfile
	// recycling marks that record pointers from the buffer are only valid
	// until the next record; retain() then clones before a Hit keeps one.
	recycling bool
	retained  *seq.Sequence
}

func newScanState(p *Profile, query *seq.Sequence, dbResidues int, opts SearchOptions, m metering.Meter) *scanState {
	var swarQ *quantProfile
	if !opts.DisableSWAR && p.transposed() {
		swarQ = p.quant
	}
	return &scanState{
		p:            p,
		query:        query,
		idx:          buildSeedIndex(query, opts.SeedK),
		opts:         opts,
		dbResidues:   dbResidues,
		m:            m,
		ws:           takeScanWorkspace(),
		res:          &Result{Query: query.ID},
		bandFloor:    bandScoreFloor(p, dbResidues, opts.MaxEValue*10),
		msvThreshold: MSVThreshold(p),
		swarQ:        swarQ,
	}
}

func (s *scanState) release() {
	releaseScanWorkspace(s.ws)
	s.ws = nil
}

// retain returns a form of target that stays valid after the buffer recycles
// the record: the record itself when the buffer hands out stable copies, or
// one lazily made clone per record otherwise (all hits of a record share it).
func (s *scanState) retain(target *seq.Sequence) *seq.Sequence {
	if !s.recycling {
		return target
	}
	if s.retained == nil {
		s.retained = cloneSeq(target)
	}
	return s.retained
}

func cloneSeq(t *seq.Sequence) *seq.Sequence {
	out := &seq.Sequence{ID: t.ID, Type: t.Type}
	if len(t.Residues) > 0 {
		out.Residues = append([]byte(nil), t.Residues...)
	}
	return out
}

// bandScoreFloor inverts the post-Viterbi E-value gate (skip Forward when
// EValue(score) > evGate) into a raw-score floor the banded kernel can prune
// against. Any alignment scoring below the returned floor is discarded by
// the gate regardless of its exact value, so the DP may stop early once it
// proves it will land there. The floor sits a full point below the gate's
// exact crossover, so scores anywhere near the boundary always run to
// completion and the gate fires identically with and without pruning.
// Returns negInf (cutoff disarmed) when the floor could never fire.
func bandScoreFloor(p *Profile, dbResidues int, evGate float64) float32 {
	if p.Lambda <= 0 || evGate <= 0 {
		return negInf
	}
	starts := float64(dbResidues) / float64(p.M+1)
	if starts < 1 {
		starts = 1
	}
	// EValue(s) = starts * exp(-Lambda*(s-Mu)) <= evGate  <=>  s >= sStar.
	sStar := p.Mu + math.Log(starts/evGate)/p.Lambda
	floor := float32(sStar) - 1
	if floor <= 0 {
		// Local-alignment scores are clamped at >= 0, so a non-positive
		// floor can never trigger; skip the per-row checks entirely.
		return negInf
	}
	return floor
}

// scanRecord pushes one database record through the filter cascade:
// seed (or MSV) filter, banded Viterbi with the E-value-derived floor,
// Forward on survivors, traceback on reported hits.
func (s *scanState) scanRecord(target *seq.Sequence) {
	s.retained = nil
	res := s.res
	// Long nucleotide targets go through the windowed nhmmer path.
	if s.query.Type != seq.Protein && target.Len() > longTargetThreshold(s.query.Len()) {
		wres := s.scanLongTarget(target)
		res.Windows += wres.Windows
		res.Candidates += wres.Candidates
		res.CellsDP += wres.CellsDP
		res.CellsPruned += wres.CellsPruned
		res.LanesRejected += wres.LanesRejected
		res.Hits = append(res.Hits, wres.Hits...)
		if wres.PeakStateBytes > res.PeakWindowStateBytes {
			res.PeakWindowStateBytes = wres.PeakStateBytes
		}
		return
	}
	var diags []int
	if s.opts.DisableSeedFilter {
		// Quantized pre-reject: when every 8-bit lane provably stays below
		// the MSV threshold, the record is done for the cost of the packed
		// scan and the float filter never runs.
		if s.msvReject(target) {
			res.LanesRejected += uint64(target.Len()) * uint64(s.p.M)
			return
		}
		hit, pruned := msvFilter(s.p, target, s.ws, s.msvThreshold, s.m)
		res.CellsPruned += pruned
		if hit.Score >= s.msvThreshold {
			s.ws.diags = append(s.ws.diags[:0], hit.Diagonal)
			diags = s.ws.diags
		}
	} else {
		diags = s.idx.candidates(target, s.opts.MinSeeds, s.opts.MaxDiagonals, 2*s.opts.HalfWidth, s.ws, s.m)
	}
	for _, d := range diags {
		res.Candidates++
		// Quantized band pre-pass: a rejected band's score provably stays
		// below the E-value gate's floor, so its full DP volume is skipped
		// (counted as pruned, exactly like the float row-max cutoff).
		if cells, rejected := s.ssvReject(target, d); rejected {
			res.CellsPruned += cells
			res.LanesRejected += cells
			continue
		}
		ali, pruned := bandedViterbi(s.p, target, d, s.opts.HalfWidth, s.ws, s.bandFloor, s.m)
		res.CellsDP += ali.Cells
		res.CellsPruned += pruned
		ev := s.p.EValue(float64(ali.Score), s.dbResidues)
		if ev > s.opts.MaxEValue*10 {
			continue // not even close; skip Forward
		}
		fwd := forward(s.p, target, d, s.opts.HalfWidth, s.ws, s.m)
		fev := s.p.EValue(fwd, s.dbResidues)
		if fev > s.opts.MaxEValue {
			continue
		}
		// Reported hits get a traced alignment for stacking and
		// display (the extra DP is charged by the traceback kernel).
		_, traced := bandedViterbiAlign(s.p, target, d, s.opts.HalfWidth, s.ws, s.m)
		kept := s.retain(target)
		res.Hits = append(res.Hits, Hit{
			TargetID:     kept.ID,
			Target:       kept,
			Diagonal:     d,
			ViterbiScore: float64(ali.Score),
			ForwardScore: fwd,
			Bits:         s.p.BitScore(fwd),
			EValue:       fev,
			Alignment:    traced,
		})
	}
}

// msvReject runs the SWAR MSV pre-filter when it is armed and its threshold
// can actually fire; true means the record provably has no passing diagonal.
func (s *scanState) msvReject(target *seq.Sequence) bool {
	if s.swarQ == nil {
		return false
	}
	tq, ok := s.swarQ.thresholdByte(s.msvThreshold, target.Len())
	if !ok {
		return false
	}
	return msvFilterSWAR(s.swarQ, target, s.ws, tq, s.m)
}

// ssvReject runs the quantized band pre-pass for one candidate diagonal;
// when it rejects, cells is the skipped float DP volume (the whole band).
func (s *scanState) ssvReject(target *seq.Sequence, d int) (cells uint64, rejected bool) {
	if s.swarQ == nil || s.bandFloor <= negInf/2 {
		return 0, false
	}
	tq, ok := s.swarQ.thresholdByte(s.bandFloor, target.Len())
	if !ok {
		return 0, false
	}
	rej, cells := bandSSVSWAR(s.swarQ, target, d, s.opts.HalfWidth, tq, s.m)
	if !rej {
		return 0, false
	}
	return cells, true
}

// scanDB is the shared inner loop: stream records through the buffering
// layer, seed-filter, DP candidates, Forward-score survivors. The context
// is polled every ctxCheckStride records — cheap enough to be invisible,
// frequent enough that cancellation lands mid-shard, not at shard end.
func scanDB(ctx context.Context, p *Profile, query *seq.Sequence, src RecordSource, dbResidues int, opts SearchOptions, m metering.Meter) (*Result, error) {
	const ctxCheckStride = 32
	buf := NewRecyclingBuffer(src, opts.DBFootprint, m)
	s := newScanState(p, query, dbResidues, opts, m)
	s.recycling = true
	defer s.release()
	res := s.res
	for {
		target, ok := buf.Next()
		if !ok {
			break
		}
		res.Scanned++
		if res.Scanned%ctxCheckStride == 1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		s.scanRecord(target)
	}
	sort.Slice(res.Hits, func(i, j int) bool {
		if res.Hits[i].EValue != res.Hits[j].EValue {
			return res.Hits[i].EValue < res.Hits[j].EValue
		}
		return res.Hits[i].TargetID < res.Hits[j].TargetID
	})
	if !opts.ReportAllDomains && len(res.Hits) > 1 {
		// Deduplicate by target: keep the best band only. 0- and 1-hit
		// results (the overwhelmingly common case across worker shards)
		// need no map at all; larger ones reuse the workspace's set.
		seen := s.ws.dedupSeen()
		uniq := res.Hits[:0]
		for _, h := range res.Hits {
			if !seen[h.TargetID] {
				seen[h.TargetID] = true
				uniq = append(uniq, h)
			}
		}
		res.Hits = uniq
	}
	return res, nil
}
