package hmmer

import (
	"math"
	"testing"

	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
)

// SWAR correctness suite: the packed lane primitives against scalar uint8
// models, the quantization soundness bound, and the reject-only contract of
// both 8-bit pre-passes against the exact float kernels. These are the
// guardrails that keep the SWAR cascade a pure performance change — a reject
// must never remove a window the float path would have accepted.

func satAddModel(x, y uint8) uint8 {
	s := int(x) + int(y)
	if s > 255 {
		return 255
	}
	return uint8(s)
}

func satSubModel(x, y uint8) uint8 {
	d := int(x) - int(y)
	if d < 0 {
		return 0
	}
	return uint8(d)
}

func maxModel(x, y uint8) uint8 {
	if x > y {
		return x
	}
	return y
}

func lane(v uint64, k int) uint8 { return uint8(v >> (8 * uint(k))) }

func checkLaneOps(t *testing.T, x, y uint64, c uint8) {
	t.Helper()
	c &= 0x7f // const-form subtrahends have bit 7 clear by construction
	cb := broadcast8(c)
	add, sub, subC, mx := satAdd8(x, y), satSub8(x, y), satSubConst8(x, cb), max8(x, y)
	anyT := c | 1
	any := anyGE8(x, anyT)
	wantAny := false
	for k := 0; k < 8; k++ {
		xa, yb := lane(x, k), lane(y, k)
		if got, want := lane(add, k), satAddModel(xa, yb); got != want {
			t.Fatalf("satAdd8 lane %d of %#x+%#x: got %d want %d", k, x, y, got, want)
		}
		if got, want := lane(sub, k), satSubModel(xa, yb); got != want {
			t.Fatalf("satSub8 lane %d of %#x-%#x: got %d want %d", k, x, y, got, want)
		}
		if got, want := lane(subC, k), satSubModel(xa, c); got != want {
			t.Fatalf("satSubConst8 lane %d of %#x-%d: got %d want %d", k, x, c, got, want)
		}
		if got, want := lane(mx, k), maxModel(xa, yb); got != want {
			t.Fatalf("max8 lane %d of %#x,%#x: got %d want %d", k, x, y, got, want)
		}
		if xa >= anyT {
			wantAny = true
		}
	}
	if any != wantAny {
		t.Fatalf("anyGE8(%#x, %d): got %v want %v", x, anyT, any, wantAny)
	}
	if b := broadcast8(c); lane(b, 0) != c || lane(b, 7) != c || lane(b, 3) != c {
		t.Fatalf("broadcast8(%d) = %#x", c, b)
	}
}

// FuzzSWARLaneOps checks every packed primitive lane-by-lane against the
// scalar saturating-uint8 models on fuzzer-chosen words.
func FuzzSWARLaneOps(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Add(^uint64(0), ^uint64(0), uint8(127))
	f.Add(uint64(0x80FF7F0180FF7F01), uint64(0x017F80FF017F80FF), uint8(6))
	f.Add(uint64(0x0102030405060708), uint64(0xF0E0D0C0B0A09080), uint8(64))
	f.Add(swarMSB, swarLSB, uint8(1))
	f.Fuzz(func(t *testing.T, x, y uint64, c uint8) {
		checkLaneOps(t, x, y, c)
	})
}

// TestSWARLaneOpsDirected covers the carry/borrow corner cases (lane values
// straddling 0x80, exact saturation boundaries) deterministically, plus a
// pseudo-random sweep, so `go test` alone exercises the primitives even when
// the fuzz corpus is absent.
func TestSWARLaneOpsDirected(t *testing.T) {
	edge := []uint8{0, 1, 0x7e, 0x7f, 0x80, 0x81, 0xfe, 0xff}
	for _, a := range edge {
		for _, b := range edge {
			x := broadcast8(a) ^ 0x00FF7F8001000000 // perturb some lanes
			y := broadcast8(b) ^ 0x80017F0000FF0000
			checkLaneOps(t, x, y, b)
		}
	}
	r := rng.New(97)
	for i := 0; i < 2000; i++ {
		checkLaneOps(t, r.Uint64(), r.Uint64(), uint8(r.Uint64()))
	}
}

// TestQuantEmissionBound pins the quantization soundness invariant: for
// every residue r and column j, emis[r][j] ≥ scale·score(r,j) + bias — with
// ceil rounding and bottom-clamping both landing on the ≥ side — so any
// quantized run dominates λ·(the exact run). Also pins the structural
// invariants the kernels rely on: bias and gapQ fit in 7 bits, gapQ
// under-charges λ·|gapOpen|, padding columns are zero, and tailMask covers
// exactly the real lanes of the last word.
func TestQuantEmissionBound(t *testing.T) {
	for _, mt := range []seq.MoleculeType{seq.Protein, seq.RNA} {
		g := seq.NewGenerator(rng.New(53))
		for pi, p := range fuzzProfiles(t, g, mt) {
			q := p.quant
			if q == nil {
				t.Fatalf("%v profile %d: no quantization", mt, pi)
			}
			if q.bias > 127 {
				t.Fatalf("%v profile %d: bias %d exceeds 7 bits", mt, pi, q.bias)
			}
			a := float64(-(p.Open + p.InsertPenalty))
			b := float64(-(p.Extend + p.InsertPenalty))
			c := float64(-p.Open)
			if float64(q.switchQ) > q.scale*math.Min(c, a-b) {
				t.Fatalf("%v profile %d: switchQ %d over-charges λ·min(|open|, a-b) = %v",
					mt, pi, q.switchQ, q.scale*math.Min(c, a-b))
			}
			if float64(q.extQ) > q.scale*b {
				t.Fatalf("%v profile %d: extQ %d over-charges λ·b = %v",
					mt, pi, q.extQ, q.scale*b)
			}
			for r := 0; r < p.K; r++ {
				row := q.emis[r*q.stride : (r+1)*q.stride]
				for j := 0; j < q.stride; j++ {
					if j >= p.M {
						if row[j] != 0 {
							t.Fatalf("%v profile %d: padding emis[%d][%d] = %d", mt, pi, r, j, row[j])
						}
						continue
					}
					sc := float64(p.MatchT[r*p.M+j])
					if float64(row[j]) < q.scale*sc+float64(q.bias) {
						t.Fatalf("%v profile %d: emis[%d][%d] = %d below λ·%v+%d",
							mt, pi, r, j, row[j], sc, q.bias)
					}
				}
			}
			lastLanes := p.M - 8*(q.words()-1)
			wantMask := ^uint64(0) >> (8 * (8 - uint(lastLanes)))
			if q.tailMask != wantMask {
				t.Fatalf("%v profile %d: tailMask %#x want %#x", mt, pi, q.tailMask, wantMask)
			}
		}
	}
}

// fuzzScanInputs decodes fuzzer bytes into a (profile, target) pair. Some
// targets are mutated homologs so the near-threshold region is exercised,
// not just deep decoys.
func fuzzScanInputs(t *testing.T, seed uint64, qSel, tSel, kind uint8, mtSel bool) (*Profile, *seq.Sequence) {
	t.Helper()
	mt := seq.Protein
	if mtSel {
		mt = seq.RNA
	}
	g := seq.NewGenerator(rng.New(seed))
	query := g.Random("q", mt, 8+int(qSel)%140)
	p, err := BuildFromQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	var target *seq.Sequence
	switch kind % 3 {
	case 0:
		target = g.Random("t", mt, 8+int(tSel))
	case 1:
		target = g.Mutate(query, "h", 0.15+float64(tSel)/512)
	default:
		target = g.Mutate(query, "h", 0.6)
	}
	return p, target
}

// FuzzSWARMSVRejectSound is the SWAR-vs-reference property: whenever the
// packed MSV scan rejects at the quantized threshold derived from a floor,
// the exact float MSV score is strictly below that floor — at the production
// threshold and at artificially lowered floors that push the scan into the
// reject/pass boundary.
func FuzzSWARMSVRejectSound(f *testing.F) {
	f.Add(uint64(1), uint8(80), uint8(120), uint8(0), false)
	f.Add(uint64(7), uint8(140), uint8(40), uint8(1), true)
	f.Add(uint64(99), uint8(20), uint8(250), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed uint64, qSel, tSel, kind uint8, mtSel bool) {
		p, target := fuzzScanInputs(t, seed, qSel, tSel, kind, mtSel)
		if p.quant == nil {
			t.Skip("profile not quantizable")
		}
		ws := takeScanWorkspace()
		defer releaseScanWorkspace(ws)
		base := MSVThreshold(p)
		for _, floor := range []float32{base, base * 0.75, base * 0.5, base * 0.25} {
			tq, ok := p.quant.thresholdByte(floor, target.Len())
			if !ok {
				continue
			}
			if msvFilterSWAR(p.quant, target, ws, tq, metering.Nop{}) {
				ref := referenceMSVFilter(p, target, metering.Nop{})
				if ref.Score >= floor {
					t.Fatalf("SWAR MSV rejected but reference score %v ≥ floor %v (tq=%d, L=%d, M=%d)",
						ref.Score, floor, tq, target.Len(), p.M)
				}
			}
		}
	})
}

// FuzzSWARBandRejectSound is the same property for the band pre-pass:
// whenever bandSSVSWAR rejects a diagonal band, the exact banded Viterbi
// score inside that band is strictly below the floor the threshold byte was
// derived from.
func FuzzSWARBandRejectSound(f *testing.F) {
	f.Add(uint64(3), uint8(90), uint8(130), uint8(1), false, int16(0))
	f.Add(uint64(11), uint8(60), uint8(200), uint8(0), true, int16(-20))
	f.Add(uint64(29), uint8(120), uint8(80), uint8(2), false, int16(55))
	f.Fuzz(func(t *testing.T, seed uint64, qSel, tSel, kind uint8, mtSel bool, dSel int16) {
		p, target := fuzzScanInputs(t, seed, qSel, tSel, kind, mtSel)
		if p.quant == nil {
			t.Skip("profile not quantizable")
		}
		d := int(dSel) % (p.M + target.Len())
		d -= target.Len() / 2
		base := MSVThreshold(p)
		for _, floor := range []float32{base + 5, base, base * 0.6, base * 0.3} {
			tq, ok := p.quant.thresholdByte(floor, target.Len())
			if !ok {
				continue
			}
			rej, cells := bandSSVSWAR(p.quant, target, d, BandHalfWidth, tq, metering.Nop{})
			if !rej {
				continue
			}
			if cells == 0 {
				t.Fatalf("band reject reported zero cells (d=%d)", d)
			}
			ref := referenceBandedViterbi(p, target, d, BandHalfWidth, metering.Nop{})
			if ref.Score >= floor {
				t.Fatalf("SWAR band rejected but reference score %v ≥ floor %v (tq=%d, d=%d, L=%d, M=%d)",
					ref.Score, floor, tq, d, target.Len(), p.M)
			}
		}
	})
}

// TestSWARRejectSoundDirected runs the two reject-soundness properties over
// a deterministic input sweep so plain `go test` covers them without a fuzz
// corpus.
func TestSWARRejectSoundDirected(t *testing.T) {
	r := rng.New(61)
	for i := 0; i < 60; i++ {
		seed := r.Uint64()
		qSel, tSel, kind := uint8(r.Uint64()), uint8(r.Uint64()), uint8(i)
		mtSel := i%2 == 0
		p, target := fuzzScanInputs(t, seed, qSel, tSel, kind, mtSel)
		if p.quant == nil {
			continue
		}
		ws := takeScanWorkspace()
		base := MSVThreshold(p)
		for _, floor := range []float32{base, base * 0.5} {
			if tq, ok := p.quant.thresholdByte(floor, target.Len()); ok {
				if msvFilterSWAR(p.quant, target, ws, tq, metering.Nop{}) {
					if ref := referenceMSVFilter(p, target, metering.Nop{}); ref.Score >= floor {
						t.Fatalf("case %d: MSV reject unsound: %v ≥ %v", i, ref.Score, floor)
					}
				}
				for _, d := range []int{0, -7, p.M / 3, p.M - 1} {
					if rej, _ := bandSSVSWAR(p.quant, target, d, BandHalfWidth, tq, metering.Nop{}); rej {
						if ref := referenceBandedViterbi(p, target, d, BandHalfWidth, metering.Nop{}); ref.Score >= floor {
							t.Fatalf("case %d: band reject unsound at d=%d: %v ≥ %v", i, d, ref.Score, floor)
						}
					}
				}
			}
		}
		releaseScanWorkspace(ws)
	}
}

// TestSWARScanSmoke is the `make check` gate for the SWAR cascade: on a tiny
// database the SWAR-enabled scan must produce a bitwise-identical hit list
// to both the SWAR-disabled scan and the reference (MatchT-stripped) scan,
// while actually rejecting work (nonzero LanesRejected). Covers both the
// MSV path and the seeded band path, and both alphabets.
func TestSWARScanSmoke(t *testing.T) {
	cases := []struct {
		name string
		mt   seq.MoleculeType
		opts SearchOptions
	}{
		{"protein-msv", seq.Protein, SearchOptions{DisableSeedFilter: true}},
		{"protein-seeded", seq.Protein, SearchOptions{}},
		{"rna-msv", seq.RNA, SearchOptions{DisableSeedFilter: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := seq.NewGenerator(rng.New(71))
			query := g.Random("query", tc.mt, 110)
			db := makeDB(t, seqdb.Spec{
				Name: "swar", Type: tc.mt, NumSeqs: 60, MeanLen: 140,
				Homologs: []*seq.Sequence{query}, HomologsPerQuery: 5, Seed: 72,
			})
			p := BuildMust(t, query)
			src := func() *SliceSource { return &SliceSource{Seqs: db.Seqs} }

			on, err := ScanRecords(p, query, src(), db.TotalResidues(), tc.opts, metering.Nop{})
			if err != nil {
				t.Fatal(err)
			}
			offOpts := tc.opts
			offOpts.DisableSWAR = true
			off, err := ScanRecords(p, query, src(), db.TotalResidues(), offOpts, metering.Nop{})
			if err != nil {
				t.Fatal(err)
			}
			stripped := *p
			stripped.MatchT = nil
			ref, err := ScanRecords(&stripped, query, src(), db.TotalResidues(), tc.opts, metering.Nop{})
			if err != nil {
				t.Fatal(err)
			}

			if len(on.Hits) == 0 {
				t.Fatal("no hits; smoke test is vacuous")
			}
			if !sameHits(on.Hits, off.Hits) || !sameHits(on.Hits, ref.Hits) {
				t.Fatalf("SWAR scan hit list diverges:\non=%+v\noff=%+v\nref=%+v", on.Hits, off.Hits, ref.Hits)
			}
			if on.Candidates != off.Candidates || on.Scanned != off.Scanned {
				t.Fatalf("scan stats diverge: on cand=%d/scanned=%d, off cand=%d/scanned=%d",
					on.Candidates, on.Scanned, off.Candidates, off.Scanned)
			}
			if on.LanesRejected == 0 {
				t.Fatal("SWAR scan rejected nothing; pre-pass is not firing")
			}
			if off.LanesRejected != 0 {
				t.Fatalf("DisableSWAR scan still rejected %d lanes", off.LanesRejected)
			}
			if ref.LanesRejected != 0 {
				t.Fatalf("reference (untransposed) scan rejected %d lanes", ref.LanesRejected)
			}

			// The rejected-lane count, like every other counter, must be
			// identical at every worker count.
			for _, workers := range []int{1, 2, 3, 7} {
				parts := make([]*Result, workers)
				per := (len(db.Seqs) + workers - 1) / workers
				for w := 0; w < workers; w++ {
					lo, hi := w*per, (w+1)*per
					if hi > len(db.Seqs) {
						hi = len(db.Seqs)
					}
					if lo >= hi {
						continue
					}
					parts[w], err = ScanRecords(p, query, &SliceSource{Seqs: db.Seqs[lo:hi]}, db.TotalResidues(), tc.opts, metering.Nop{})
					if err != nil {
						t.Fatal(err)
					}
				}
				merged := MergeResults(query.ID, parts)
				if !sameHits(merged.Hits, on.Hits) {
					t.Fatalf("workers=%d: merged hits diverge", workers)
				}
				if merged.LanesRejected != on.LanesRejected || merged.CellsPruned != on.CellsPruned {
					t.Fatalf("workers=%d: counters diverge: lanes %d vs %d, pruned %d vs %d",
						workers, merged.LanesRejected, on.LanesRejected, merged.CellsPruned, on.CellsPruned)
				}
			}
		})
	}
}

// TestSWARKillSwitch pins the kill-switch contract: DisableSWAR leaves no
// SWAR machinery armed (scan state carries no quantized profile) and the
// metering stream contains no SWAR events, so the disabled path is exactly
// the pre-SWAR cascade.
func TestSWARKillSwitch(t *testing.T) {
	g := seq.NewGenerator(rng.New(79))
	query := g.Random("query", seq.Protein, 90)
	db := makeDB(t, seqdb.Spec{
		Name: "kill", Type: seq.Protein, NumSeqs: 30, MeanLen: 120,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 3, Seed: 80,
	})
	p := BuildMust(t, query)

	st := newScanState(p, query, db.TotalResidues(), SearchOptions{DisableSWAR: true}, metering.Nop{})
	if st.swarQ != nil {
		t.Fatal("DisableSWAR left the quantized profile armed")
	}
	releaseScanWorkspace(st.ws)
	if st = newScanState(p, query, db.TotalResidues(), SearchOptions{}, metering.Nop{}); st.swarQ == nil {
		t.Fatal("default options did not arm SWAR on a transposed profile")
	}
	releaseScanWorkspace(st.ws)

	var acc metering.Accumulator
	if _, err := ScanRecords(p, query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(),
		SearchOptions{DisableSeedFilter: true, DisableSWAR: true}, &acc); err != nil {
		t.Fatal(err)
	}
	byFunc := acc.ByFunc()
	for _, fn := range []string{"msv_swar", "ssv_band"} {
		if _, ok := byFunc[fn]; ok {
			t.Fatalf("DisableSWAR scan still emitted %s events", fn)
		}
	}
	if tot := acc.Totals(); tot.LanesRejected != 0 {
		t.Fatalf("DisableSWAR scan metered %d rejected lanes", tot.LanesRejected)
	}
}

// TestSWARMeteringAttribution checks that the SWAR events carry the rejected
// work in Event.LanesRejected and that the scan Result surfaces the same
// totals, so simhw attribution can separate SWAR rejections from float-path
// pruning.
func TestSWARMeteringAttribution(t *testing.T) {
	g := seq.NewGenerator(rng.New(83))
	query := g.Random("query", seq.Protein, 100)
	db := makeDB(t, seqdb.Spec{
		Name: "attr", Type: seq.Protein, NumSeqs: 50, MeanLen: 130,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 4, Seed: 84,
	})
	p := BuildMust(t, query)

	var acc metering.Accumulator
	res, err := ScanRecords(p, query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(),
		SearchOptions{DisableSeedFilter: true}, &acc)
	if err != nil {
		t.Fatal(err)
	}
	byFunc := acc.ByFunc()
	msv, ok := byFunc["msv_swar"]
	if !ok {
		t.Fatal("no msv_swar events metered")
	}
	if msv.LanesRejected == 0 {
		t.Fatal("msv_swar events carry no rejected lanes")
	}
	var swarTotal uint64
	for _, fn := range []string{"msv_swar", "ssv_band"} {
		swarTotal += byFunc[fn].LanesRejected
	}
	if swarTotal != res.LanesRejected {
		t.Fatalf("metered rejected lanes %d != scan result %d", swarTotal, res.LanesRejected)
	}
	if tot := acc.Totals(); tot.LanesRejected != swarTotal {
		t.Fatalf("Totals().LanesRejected = %d, want %d", tot.LanesRejected, swarTotal)
	}
}

// TestThresholdByteMonotone pins thresholdByte's contract: a higher floor
// never yields a lower byte, the byte stays in [1, 255-bias], and a floor at
// or below the margin disarms.
func TestThresholdByteMonotone(t *testing.T) {
	g := seq.NewGenerator(rng.New(89))
	p := BuildMust(t, g.Random("q", seq.Protein, 80))
	q := p.quant
	if q == nil {
		t.Fatal("no quantization")
	}
	prev := uint8(0)
	for _, floor := range []float32{0.5, 2, 5, 10, 20, 30, 50, 200, 1e6} {
		tq, ok := q.thresholdByte(floor, 200)
		if !ok {
			if floor > 5 {
				t.Fatalf("floor %v unexpectedly disarmed", floor)
			}
			continue
		}
		if tq < 1 || int(tq) > 255-int(q.bias) {
			t.Fatalf("floor %v: byte %d out of range [1, %d]", floor, tq, 255-int(q.bias))
		}
		if tq < prev {
			t.Fatalf("floor %v: byte %d below previous %d (not monotone)", floor, tq, prev)
		}
		prev = tq
	}
	if _, ok := q.thresholdByte(negInf, 100); ok {
		t.Fatal("-inf floor produced a threshold byte")
	}
	if _, ok := q.thresholdByte(float32(math.Inf(-1)), 100); ok {
		t.Fatal("-Inf floor produced a threshold byte")
	}
}
