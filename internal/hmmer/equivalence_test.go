package hmmer

import (
	"math"
	"testing"

	"afsysbench/internal/metering"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
)

// Layout-equivalence tests: the transposed (MatchT, workspace-backed)
// kernels must reproduce the reference (column-major, per-call allocation)
// kernels bitwise — same float bits, not just approximately equal — on both
// alphabets and on both profile construction paths. These are the guardrail
// that keeps the optimization a pure layout/allocation change.

// fuzzProfiles builds a mix of query-built and alignment-built profiles for
// one molecule type from a deterministic generator.
func fuzzProfiles(t *testing.T, g *seq.Generator, mt seq.MoleculeType) []*Profile {
	t.Helper()
	var out []*Profile
	for _, ln := range []int{7, 40, 133} {
		q := g.Random("q", mt, ln)
		p, err := BuildFromQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
		// Alignment-built profile: query plus two mutated rows.
		rows := [][]byte{
			append([]byte(nil), q.Residues...),
			append([]byte(nil), g.Mutate(q, "m1", 0.2).Residues...),
			append([]byte(nil), g.Mutate(q, "m2", 0.4).Residues...),
		}
		ap, err := BuildFromAlignment("ali", mt, rows)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ap)
	}
	return out
}

func f32bits(x float32) uint32 { return math.Float32bits(x) }

func TestTransposedKernelsMatchReferenceBitwise(t *testing.T) {
	for _, mt := range []seq.MoleculeType{seq.Protein, seq.RNA} {
		g := seq.NewGenerator(rng.New(31))
		profiles := fuzzProfiles(t, g, mt)
		ws := takeScanWorkspace()
		defer releaseScanWorkspace(ws)
		for pi, p := range profiles {
			if !p.transposed() {
				t.Fatalf("profile %d (%v) missing transposed layout", pi, mt)
			}
			for ti := 0; ti < 12; ti++ {
				target := g.Random("t", mt, 20+17*ti)
				refHit := referenceMSVFilter(p, target, metering.Nop{})
				optHit, pruned := msvFilter(p, target, ws, negInf, metering.Nop{})
				if pruned != 0 {
					t.Fatalf("unarmed msvFilter pruned %d lanes", pruned)
				}
				if f32bits(refHit.Score) != f32bits(optHit.Score) || refHit.Diagonal != optHit.Diagonal {
					t.Fatalf("%v profile %d target %d: MSV mismatch ref=%+v opt=%+v", mt, pi, ti, refHit, optHit)
				}
				for _, d := range []int{optHit.Diagonal, 0, -5, p.M / 2} {
					refAli := referenceBandedViterbi(p, target, d, BandHalfWidth, metering.Nop{})
					optAli, bp := bandedViterbi(p, target, d, BandHalfWidth, ws, negInf, metering.Nop{})
					if bp != 0 {
						t.Fatalf("unarmed bandedViterbi pruned %d cells", bp)
					}
					if f32bits(refAli.Score) != f32bits(optAli.Score) || refAli != optAli {
						t.Fatalf("%v profile %d target %d diag %d: Viterbi mismatch ref=%+v opt=%+v", mt, pi, ti, d, refAli, optAli)
					}
					refF := referenceForward(p, target, d, BandHalfWidth, metering.Nop{})
					optF := forward(p, target, d, BandHalfWidth, ws, metering.Nop{})
					if math.Float64bits(refF) != math.Float64bits(optF) {
						t.Fatalf("%v profile %d target %d diag %d: Forward mismatch ref=%v opt=%v", mt, pi, ti, d, refF, optF)
					}
				}
			}
		}
	}
}

// TestPublicKernelsUseFallbackWithoutTransposedLayout pins the fallback
// contract: a hand-assembled profile that never called BuildTransposed still
// searches correctly through the reference path.
func TestPublicKernelsUseFallbackWithoutTransposedLayout(t *testing.T) {
	g := seq.NewGenerator(rng.New(37))
	q := g.Random("q", seq.Protein, 60)
	p, err := BuildFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	stripped := *p
	stripped.MatchT = nil
	target := g.Random("t", seq.Protein, 90)
	if f32bits(MSVFilter(p, target, nil).Score) != f32bits(MSVFilter(&stripped, target, nil).Score) {
		t.Error("MSV fallback diverges from transposed path")
	}
	if BandedViterbi(p, target, 0, BandHalfWidth, nil) != BandedViterbi(&stripped, target, 0, BandHalfWidth, nil) {
		t.Error("banded Viterbi fallback diverges from transposed path")
	}
	a := Forward(p, target, 0, BandHalfWidth, nil)
	b := Forward(&stripped, target, 0, BandHalfWidth, nil)
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Errorf("Forward fallback diverges: %v vs %v", a, b)
	}
}

// sameHits reports whether two hit lists are identical in every scoring
// field (float comparisons are bitwise).
func sameHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TargetID != b[i].TargetID || a[i].Diagonal != b[i].Diagonal ||
			math.Float64bits(a[i].ViterbiScore) != math.Float64bits(b[i].ViterbiScore) ||
			math.Float64bits(a[i].ForwardScore) != math.Float64bits(b[i].ForwardScore) ||
			math.Float64bits(a[i].EValue) != math.Float64bits(b[i].EValue) {
			return false
		}
	}
	return true
}

// TestPruningPreservesScanResults runs full database scans through the
// optimized cascade (pruning armed) and through the reference kernels (via a
// MatchT-stripped profile copy) and requires identical hit lists — the
// pruning floors are provably conservative, so no reported field may move.
func TestPruningPreservesScanResults(t *testing.T) {
	cases := []struct {
		name string
		mt   seq.MoleculeType
		opts SearchOptions
	}{
		{"protein-seeded", seq.Protein, SearchOptions{}},
		{"protein-msv", seq.Protein, SearchOptions{DisableSeedFilter: true}},
		{"rna-windowed", seq.RNA, SearchOptions{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := seq.NewGenerator(rng.New(41))
			query := g.Random("query", tc.mt, 120)
			db := makeDB(t, seqdb.Spec{
				Name: "eq", Type: tc.mt, NumSeqs: 80, MeanLen: 150,
				Homologs: []*seq.Sequence{query}, HomologsPerQuery: 6, Seed: 42,
			})
			p, err := BuildFromQuery(query)
			if err != nil {
				t.Fatal(err)
			}
			stripped := *p
			stripped.MatchT = nil
			opt, err := ScanRecords(p, query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(), tc.opts, metering.Nop{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := ScanRecords(&stripped, query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(), tc.opts, metering.Nop{})
			if err != nil {
				t.Fatal(err)
			}
			if !sameHits(opt.Hits, ref.Hits) {
				t.Fatalf("hit lists diverge:\nopt=%+v\nref=%+v", opt.Hits, ref.Hits)
			}
			if opt.Candidates != ref.Candidates || opt.Scanned != ref.Scanned {
				t.Fatalf("scan stats diverge: opt cand=%d scanned=%d, ref cand=%d scanned=%d",
					opt.Candidates, opt.Scanned, ref.Candidates, ref.Scanned)
			}
			if !tc.opts.DisableSeedFilter {
				// On the seeded path CellsPruned is exactly the band cells
				// skipped, so executed + pruned must equal the reference's
				// full DP volume.
				if opt.CellsDP+opt.CellsPruned != ref.CellsDP {
					t.Errorf("cell accounting: opt %d + pruned %d != ref %d",
						opt.CellsDP, opt.CellsPruned, ref.CellsDP)
				}
			}
		})
	}
}

// TestScanDeterministicAcrossWorkerCounts shards the database as msa's
// scanParallel does and requires the merged result to be identical to the
// single-shard scan at every worker count — pooled workspaces must not leak
// state between shards.
func TestScanDeterministicAcrossWorkerCounts(t *testing.T) {
	g := seq.NewGenerator(rng.New(43))
	query := g.Random("query", seq.Protein, 140)
	db := makeDB(t, seqdb.Spec{
		Name: "det", Type: seq.Protein, NumSeqs: 90, MeanLen: 140,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 8, Seed: 44,
	})
	p, err := BuildFromQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ScanRecords(p, query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(), SearchOptions{}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Hits) == 0 {
		t.Fatal("scan found no hits; determinism test is vacuous")
	}
	for _, workers := range []int{1, 2, 3, 7} {
		parts := make([]*Result, workers)
		per := (len(db.Seqs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > len(db.Seqs) {
				hi = len(db.Seqs)
			}
			if lo >= hi {
				continue
			}
			parts[w], err = ScanRecords(p, query, &SliceSource{Seqs: db.Seqs[lo:hi]}, db.TotalResidues(), SearchOptions{}, metering.Nop{})
			if err != nil {
				t.Fatal(err)
			}
		}
		merged := MergeResults(query.ID, parts)
		if !sameHits(merged.Hits, single.Hits) {
			t.Fatalf("workers=%d: merged hits diverge from single-shard scan", workers)
		}
		if merged.CellsDP != single.CellsDP || merged.CellsPruned != single.CellsPruned {
			t.Fatalf("workers=%d: cell counts diverge: %d/%d vs %d/%d",
				workers, merged.CellsDP, merged.CellsPruned, single.CellsDP, single.CellsPruned)
		}
	}
}

// TestRecycledRecordsDoNotAliasHits guards the recycling buffer contract:
// hits must hold stable copies of their targets, not the recycled record.
func TestRecycledRecordsDoNotAliasHits(t *testing.T) {
	g := seq.NewGenerator(rng.New(47))
	query := g.Random("query", seq.Protein, 100)
	db := makeDB(t, seqdb.Spec{
		Name: "rec", Type: seq.Protein, NumSeqs: 40, MeanLen: 120,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 5, Seed: 48,
	})
	res, err := ScanRecords(BuildMust(t, query), query, &SliceSource{Seqs: db.Seqs}, db.TotalResidues(), SearchOptions{}, metering.Nop{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits; aliasing test is vacuous")
	}
	byID := map[string]*seq.Sequence{}
	for _, s := range db.Seqs {
		byID[s.ID] = s
	}
	for _, h := range res.Hits {
		want := byID[h.TargetID]
		if want == nil {
			t.Fatalf("hit for unknown target %s", h.TargetID)
		}
		if h.Target.Len() != want.Len() {
			t.Fatalf("hit %s target length %d, want %d (recycled buffer leaked)", h.TargetID, h.Target.Len(), want.Len())
		}
		for i := range want.Residues {
			if h.Target.Residues[i] != want.Residues[i] {
				t.Fatalf("hit %s residues corrupted at %d (recycled buffer leaked)", h.TargetID, i)
			}
		}
	}
}

func BuildMust(t *testing.T, q *seq.Sequence) *Profile {
	t.Helper()
	p, err := BuildFromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
