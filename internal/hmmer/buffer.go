package hmmer

import (
	"afsysbench/internal/metering"
	"afsysbench/internal/seq"
)

// RecordSource yields database records in storage order.
type RecordSource interface {
	// Next returns the next record, or ok=false at end of input.
	Next() (s *seq.Sequence, ok bool)
}

// SliceSource adapts an in-memory record slice to RecordSource.
type SliceSource struct {
	Seqs []*seq.Sequence
	pos  int
}

// Next implements RecordSource.
func (s *SliceSource) Next() (*seq.Sequence, bool) {
	if s.pos >= len(s.Seqs) {
		return nil, false
	}
	out := s.Seqs[s.pos]
	s.pos++
	return out, true
}

// Buffer is the input-buffering layer between database storage and the
// search kernels, mirroring HMMER's esl_buffer stack. Each record passes
// through three instrumented steps that appear in the paper's profiles:
//
//	copy_to_iter — the kernel-side copy from page cache into user space
//	               (its working set is the whole modeled database, which is
//	               why it dominates LLC misses at low thread counts);
//	addbuf       — appending the record into the user-space lookahead
//	               buffer;
//	seebuf       — lookahead scanning/classification of buffered input.
//
// The copies are performed for real so wall-time benchmarks exercise the
// same byte traffic the models account for.
type Buffer struct {
	src   RecordSource
	meter metering.Meter
	// dbFootprint is the modeled resident footprint of the database being
	// streamed (paper-scale bytes); it is the working set reported for
	// copy_to_iter.
	dbFootprint uint64
	staging     []byte
	// recycle hands out the same Sequence header and byte buffer on every
	// Next call instead of fresh allocations. Callers that keep a record
	// beyond the following Next (e.g. inside a Hit) must clone it first;
	// scanDB does this lazily per reported record. The addbuf event still
	// reports Allocated: n either way — it models HMMER's per-record buffer
	// growth at paper scale, not this process's Go heap.
	recycle bool
	out     []byte
	rec     seq.Sequence
}

// stagingSize is the user-space lookahead buffer size (matches HMMER's
// default 256 KiB input window).
const stagingSize = 256 * 1024

// NewBuffer wraps src. dbFootprint is the modeled byte size of the backing
// database (DB.ModeledBytes()).
func NewBuffer(src RecordSource, dbFootprint uint64, m metering.Meter) *Buffer {
	if m == nil {
		m = metering.Nop{}
	}
	return &Buffer{
		src:         src,
		meter:       m,
		dbFootprint: dbFootprint,
		staging:     make([]byte, 0, stagingSize),
	}
}

// NewRecyclingBuffer is NewBuffer with record recycling: the returned record
// (header and residue bytes) is only valid until the next Next call. This is
// the steady-state scan configuration — a database pass touches millions of
// records and the per-record copies are pure garbage once scanned.
func NewRecyclingBuffer(src RecordSource, dbFootprint uint64, m metering.Meter) *Buffer {
	b := NewBuffer(src, dbFootprint, m)
	b.recycle = true
	return b
}

// Next returns the next record after pushing it through the instrumented
// buffering path.
func (b *Buffer) Next() (*seq.Sequence, bool) {
	rec, ok := b.src.Next()
	if !ok {
		return nil, false
	}
	n := uint64(len(rec.Residues))

	// copy_to_iter: page-cache -> user copy. One real pass over the bytes.
	if cap(b.staging) < len(rec.Residues) {
		b.staging = make([]byte, 0, len(rec.Residues))
	}
	b.staging = b.staging[:len(rec.Residues)]
	copy(b.staging, rec.Residues)
	b.meter.Record(metering.Event{
		Func:         "copy_to_iter",
		Instructions: n / 2, // wide vectorized copy loop
		Bytes:        2 * n, // read + write
		WorkingSet:   b.dbFootprint,
		Pattern:      metering.Sequential,
		Branches:     n / 64,
		// Copy loops are essentially branch-perfect.
		BranchMissRate: 0.001,
	})

	// addbuf: append into the lookahead window (second real pass).
	var out []byte
	if b.recycle {
		if cap(b.out) < len(b.staging) {
			b.out = make([]byte, len(b.staging))
		}
		out = b.out[:len(b.staging)]
	} else {
		out = make([]byte, len(b.staging))
	}
	copy(out, b.staging)
	b.meter.Record(metering.Event{
		Func:           "addbuf",
		Instructions:   12 * n, // parsing, validation, digital translation
		Bytes:          2 * n,
		WorkingSet:     stagingSize,
		Pattern:        metering.Sequential,
		Branches:       n / 16,
		BranchMissRate: 0.002,
		Allocated:      n,
	})

	// seebuf: lookahead scanning — a real pass over the record computing a
	// composition checksum (standing in for record sniffing and lookahead
	// tokenization).
	var sum uint32
	for _, c := range out {
		sum = sum*31 + uint32(c)
	}
	_ = sum
	b.meter.Record(metering.Event{
		Func:           "seebuf",
		Instructions:   4 * n,
		Bytes:          n,
		WorkingSet:     stagingSize,
		Pattern:        metering.Sequential,
		Branches:       n,
		BranchMissRate: 0.002,
	})

	if b.recycle {
		b.out = out
		b.rec = seq.Sequence{ID: rec.ID, Type: rec.Type, Residues: out}
		return &b.rec, true
	}
	return &seq.Sequence{ID: rec.ID, Type: rec.Type, Residues: out}, true
}
