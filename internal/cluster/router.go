package cluster

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/msa"
	"afsysbench/internal/resilience"
	"afsysbench/internal/serve"
)

// RouterConfig tunes the replica router.
type RouterConfig struct {
	// MaxAttempts bounds submissions per logical request across replicas
	// (default: replica count, minimum 2) — each attempt after the first
	// is a failover or a shed reroute.
	MaxAttempts int
	// Hedge enables request-level latency hedging: once MinSamples
	// request latencies are observed, a request still running after
	// Factor × the Percentile-th latency gets a backup submission on a
	// different replica, and the first finisher wins. Same estimator
	// shape as the server's chain-level serve.HedgeConfig, one level up.
	Hedge serve.HedgeConfig
	// PollInterval is the job-status polling period (default 200µs —
	// modeled stages finish in milliseconds).
	PollInterval time.Duration
}

func (c RouterConfig) withDefaults(replicas int) RouterConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = replicas
		if c.MaxAttempts < 2 {
			c.MaxAttempts = 2
		}
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 200 * time.Microsecond
	}
	return c
}

// Router spreads requests across R serve.Server replicas with
// health-aware load balancing: it prefers replicas whose readiness probe
// (the same verdict GET /v1/readyz serves) is green, breaks ties by
// least outstanding requests, and fails a request over — carrying its
// chain checkpoint — when a replica sheds, fails, or dies mid-request.
type Router struct {
	replicas []*serve.Server
	cfg      RouterConfig

	mu          sync.Mutex
	outstanding []int
	dispatches  []int64
	killed      []bool
	stats       RouterStats
	samples     []time.Duration
}

// RouterStats is the router's counter snapshot.
type RouterStats struct {
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Failovers counts retries on a different replica after a failed
	// attempt (replica death included); ShedReroutes counts retries after
	// an admission shed.
	Failovers    int64 `json:"failovers"`
	ShedReroutes int64 `json:"shed_reroutes"`
	// Hedges counts backup submissions; HedgeBackupWins how often the
	// backup finished first.
	Hedges          int64 `json:"hedges"`
	HedgeBackupWins int64 `json:"hedge_backup_wins"`
	// PerReplica is one row per replica, in replica order.
	PerReplica []ReplicaStats `json:"per_replica"`
}

// ReplicaStats is one replica's row in the router stats.
type ReplicaStats struct {
	Replica    int   `json:"replica"`
	Dispatches int64 `json:"dispatches"`
	Killed     bool  `json:"killed,omitempty"`
}

// RouteResult is the outcome of one routed request.
type RouteResult struct {
	// Replica is the index that produced the final result; Attempts the
	// submissions it took (1 = first try).
	Replica  int
	Attempts int
	// Hedged marks a request that got a backup submission; BackupWon that
	// the backup finished first.
	Hedged    bool
	BackupWon bool
	Status    serve.JobStatus
	Result    *core.PipelineResult
}

// NewRouter builds a router over started (or to-be-started) replicas.
func NewRouter(replicas []*serve.Server, cfg RouterConfig) *Router {
	return &Router{
		replicas:    replicas,
		cfg:         cfg.withDefaults(len(replicas)),
		outstanding: make([]int, len(replicas)),
		dispatches:  make([]int64, len(replicas)),
		killed:      make([]bool, len(replicas)),
	}
}

// Replicas returns the routed servers.
func (r *Router) Replicas() []*serve.Server { return r.replicas }

// Kill simulates replica i dying abruptly: in-flight requests on it fail
// at their next context check and the router routes around it.
func (r *Router) Kill(i int) {
	if i < 0 || i >= len(r.replicas) {
		return
	}
	r.mu.Lock()
	r.killed[i] = true
	r.mu.Unlock()
	r.replicas[i].Kill()
}

// Outstanding returns replica i's in-flight request count — the chaos
// harness uses it to time a kill while work is actually on the victim.
func (r *Router) Outstanding(i int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 || i >= len(r.outstanding) {
		return 0
	}
	return r.outstanding[i]
}

// Stats returns a counter snapshot.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.PerReplica = make([]ReplicaStats, len(r.replicas))
	for i := range r.replicas {
		st.PerReplica[i] = ReplicaStats{Replica: i, Dispatches: r.dispatches[i], Killed: r.killed[i]}
	}
	return st
}

// pick chooses the next replica: not killed and not excluded, preferring
// ready ones (readiness probe green), then least outstanding, then lowest
// index. Returns -1 when no candidate remains.
func (r *Router) pick(exclude map[int]bool) int {
	type cand struct {
		i           int
		ready       bool
		outstanding int
	}
	var cands []cand
	for i, srv := range r.replicas {
		r.mu.Lock()
		dead := r.killed[i]
		out := r.outstanding[i]
		r.mu.Unlock()
		if dead || exclude[i] {
			continue
		}
		cands = append(cands, cand{i: i, ready: srv.Ready().Ready, outstanding: out})
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].ready != cands[b].ready {
			return cands[a].ready
		}
		if cands[a].outstanding != cands[b].outstanding {
			return cands[a].outstanding < cands[b].outstanding
		}
		return cands[a].i < cands[b].i
	})
	return cands[0].i
}

// Do routes one request to completion: submit to the best replica, wait,
// and on a shed, failure, or replica death retry on another replica with
// the same chain checkpoint — so chains the failed attempt completed are
// replayed, not recomputed. With hedging enabled a straggling request
// gets a concurrent backup on a different replica and the first terminal
// result wins (both compute the same deterministic result).
func (r *Router) Do(ctx context.Context, req serve.Request) (RouteResult, error) {
	if req.Checkpoint == nil {
		// One checkpoint per logical request, shared by every attempt and
		// hedge backup across replicas. Replicas share one suite, so the
		// checkpoint scopes (database-profile signatures) line up.
		req.Checkpoint = msa.NewCheckpoint()
	}
	r.mu.Lock()
	r.stats.Requests++
	r.mu.Unlock()
	start := time.Now()

	var lastErr error
	exclude := make(map[int]bool)
	out := RouteResult{}
	for attempt := 1; attempt <= r.cfg.MaxAttempts; attempt++ {
		out.Attempts = attempt
		replica := r.pick(exclude)
		if replica < 0 {
			// Every remaining replica is dead or already failed this
			// request; clear the exclusions and allow re-tries on shed
			// replicas (a shed is transient, a death is not).
			exclude = make(map[int]bool)
			if replica = r.pick(exclude); replica < 0 {
				if lastErr == nil {
					lastErr = errors.New("cluster: all replicas down")
				}
				break
			}
		}
		srv := r.replicas[replica]
		id, err := srv.Submit(req)
		if err != nil {
			lastErr = err
			if resilience.IsOverloaded(err) {
				// A QoS shed (rate-limited / brownout) is a verdict on the
				// tenant, not the replica: replicas share one admission
				// controller, so every reroute would re-offer an already
				// rejected request and burn attempts laundering the quota.
				// Only a queue-full shed is worth trying elsewhere.
				if reason := resilience.ShedReasonOf(err); reason != resilience.ShedQueueFull {
					r.finish(time.Since(start), false)
					return out, err
				}
				r.mu.Lock()
				r.stats.ShedReroutes++
				r.mu.Unlock()
			}
			exclude[replica] = true
			continue
		}
		r.noteSubmit(replica, 1)
		st, won := r.await(ctx, &out, replica, srv, id, req, start)
		r.noteSubmit(replica, -1)
		if won != nil {
			out = *won
		} else {
			out.Replica = replica
			out.Status = st
		}
		if out.Status.State == serve.StateDone.String() {
			if res, ok := r.replicas[out.Replica].Result(out.Status.ID); ok {
				out.Result = res
			}
			r.finish(time.Since(start), true)
			return out, nil
		}
		lastErr = errors.New(out.Status.Error)
		exclude[replica] = true
		if attempt < r.cfg.MaxAttempts {
			r.mu.Lock()
			r.stats.Failovers++
			r.mu.Unlock()
		}
	}
	r.finish(time.Since(start), false)
	return out, lastErr
}

// await polls the primary job until terminal, arming at most one hedge
// backup on a different replica once the latency budget passes. It
// returns the primary's terminal status, plus a non-nil RouteResult when
// the backup reached StateDone first.
func (r *Router) await(ctx context.Context, out *RouteResult, primary int, srv *serve.Server, id string, req serve.Request, start time.Time) (serve.JobStatus, *RouteResult) {
	budget := r.hedgeBudget()
	var backupSrv *serve.Server
	var backupID string
	backupReplica := -1
	defer func() {
		if backupReplica >= 0 {
			r.noteSubmit(backupReplica, -1)
		}
	}()
	tick := time.NewTicker(r.cfg.PollInterval)
	defer tick.Stop()
	for {
		st, ok := srv.Status(id)
		if ok && terminal(st.State) {
			return st, nil
		}
		if backupSrv != nil {
			if bst, ok := backupSrv.Status(backupID); ok && terminal(bst.State) {
				if bst.State == serve.StateDone.String() {
					r.mu.Lock()
					r.stats.HedgeBackupWins++
					r.mu.Unlock()
					return st, &RouteResult{
						Replica:   backupReplica,
						Attempts:  out.Attempts,
						Hedged:    true,
						BackupWon: true,
						Status:    bst,
					}
				}
				// Failed backup: forget it, keep waiting on the primary.
				backupSrv, backupID, backupReplica = nil, "", -1
			}
		}
		if backupSrv == nil && budget > 0 && time.Since(start) > budget {
			if i := r.pick(map[int]bool{primary: true}); i >= 0 {
				if bid, err := r.replicas[i].Submit(req); err == nil {
					backupSrv, backupID, backupReplica = r.replicas[i], bid, i
					out.Hedged = true
					r.noteSubmit(i, 1)
					r.mu.Lock()
					r.stats.Hedges++
					r.mu.Unlock()
				}
			}
			budget = 0 // one backup per request
		}
		select {
		case <-ctx.Done():
			return serve.JobStatus{ID: id, State: serve.StateFailed.String(), Error: ctx.Err().Error()}, nil
		case <-tick.C:
		}
	}
}

func terminal(state string) bool {
	return state == serve.StateDone.String() || state == serve.StateFailed.String()
}

func (r *Router) noteSubmit(replica, delta int) {
	r.mu.Lock()
	r.outstanding[replica] += delta
	if delta > 0 {
		r.dispatches[replica]++
	}
	r.mu.Unlock()
}

func (r *Router) finish(wall time.Duration, done bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if done {
		r.stats.Completed++
		r.samples = append(r.samples, wall)
		if len(r.samples) > 4096 {
			r.samples = append([]time.Duration(nil), r.samples[len(r.samples)-2048:]...)
		}
	} else {
		r.stats.Failed++
	}
}

// hedgeBudget derives the request-level hedge delay from observed
// latencies, or 0 while disarmed.
func (r *Router) hedgeBudget() time.Duration {
	if !r.cfg.Hedge.Enabled {
		return 0
	}
	cfg := r.cfg.Hedge
	if cfg.Percentile <= 0 || cfg.Percentile > 100 {
		cfg.Percentile = 95
	}
	if cfg.Factor <= 0 {
		cfg.Factor = 2
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 8
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.samples)
	if n < cfg.MinSamples {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(cfg.Percentile/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return time.Duration(cfg.Factor * float64(sorted[idx]))
}
