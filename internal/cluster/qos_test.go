package cluster

import (
	"context"
	"testing"
	"time"

	"afsysbench/internal/qos"
	"afsysbench/internal/resilience"
	"afsysbench/internal/serve"
)

// TestRouterSharedQoSController is the cluster leg of the multi-tenant
// story: replicas behind the router share ONE admission controller, so a
// tenant spraying the cluster gets exactly its single-system quota, the
// router treats a QoS shed as final (rerouting would just re-offer an
// already rejected request on another replica), and the tenant identity
// survives onto the completed job status.
func TestRouterSharedQoSController(t *testing.T) {
	suite := testSuite(t)
	quota := map[string]qos.TenantConfig{
		"bulk": {Weight: 1, Rate: 100, Burst: 500},
	}
	ctrl := qos.NewController(qos.Config{Tenants: quota, DrainTokensPerSec: 1000})
	var replicas []*serve.Server
	for i := 0; i < 2; i++ {
		s := serve.NewWithSuite(suite, serve.Config{
			Threads: 2, MSAWorkers: 1, GPUWorkers: 1, QueueDepth: 8, QoS: ctrl,
		})
		s.Start()
		t.Cleanup(s.Stop)
		replicas = append(replicas, s)
	}
	r := NewRouter(replicas, RouterConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	admitted, shed := 0, 0
	for i := 0; i < 12; i++ {
		out, err := r.Do(ctx, serve.Request{Sample: "ppi-0x1", Tenant: "bulk", Arrival: float64(i)})
		switch {
		case err == nil:
			admitted++
			if out.Status.Tenant != "bulk" {
				t.Fatalf("request %d: status tenant %q, want bulk", i, out.Status.Tenant)
			}
		case resilience.IsOverloaded(err):
			shed++
			if class := serve.ErrorClass(err); class != "overloaded-rate-limited" {
				t.Fatalf("request %d: shed class %q, want overloaded-rate-limited", i, class)
			}
		default:
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// ppi-0x1 costs ~205 chain-tokens: 11 modeled seconds of refill at
	// 100 t/s plus the 500-token burst funds ~8 admissions. Independent
	// per-replica controllers would have admitted twice that (all 12).
	if shed == 0 || admitted == 12 {
		t.Fatalf("shared quota not enforced across replicas: %d admitted, %d shed", admitted, shed)
	}
	single := qos.NewController(qos.Config{Tenants: quota, DrainTokensPerSec: 1000})
	singleAdmitted := 0
	for i := 0; i < 12; i++ {
		if single.Admit("bulk", float64(i), 205).Admit {
			singleAdmitted++
		}
	}
	if admitted != singleAdmitted {
		t.Errorf("sprayed admissions %d != single-system admissions %d — replicas leaked quota", admitted, singleAdmitted)
	}
	// A QoS shed is a verdict on the tenant, not the replica: the router
	// must not have burned attempts rerouting it.
	if st := r.Stats(); st.ShedReroutes != 0 {
		t.Errorf("router rerouted %d QoS sheds; rate-limited sheds are final", st.ShedReroutes)
	}
}
