package cluster

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"afsysbench/internal/inputs"
	"afsysbench/internal/msa"
)

var (
	dbsOnce   sync.Once
	dbsShared *msa.DBSet
	dbsErr    error
)

func testDBs(t *testing.T) *msa.DBSet {
	t.Helper()
	dbsOnce.Do(func() {
		dbsShared, dbsErr = msa.BuildDBSet(inputs.Samples(), msa.DefaultDBConfig())
	})
	if dbsErr != nil {
		t.Fatalf("BuildDBSet: %v", dbsErr)
	}
	return dbsShared
}

func testInput(t *testing.T, name string) *inputs.Input {
	t.Helper()
	in, err := inputs.ByName(name)
	if err != nil {
		t.Fatalf("ByName(%s): %v", name, err)
	}
	return in
}

func scanOnce(t *testing.T, in *inputs.Input, dbs *msa.DBSet, threads int, scatter msa.ScatterFunc) *msa.Result {
	t.Helper()
	res, err := msa.Run(in, msa.Options{
		Threads:        threads,
		DBs:            dbs,
		AllowMissingDB: true,
		Scatter:        scatter,
	})
	if err != nil {
		t.Fatalf("msa.Run(threads=%d): %v", threads, err)
	}
	return res
}

// TestScatterGatherBitwiseIdentical is the PR 1 determinism contract
// extended node-wise: the scatter-gathered MSA result — hits, per-chain
// counters, features, streamed bytes, and the per-worker metering event
// streams that the machine models replay into modeled seconds — must be
// deeply identical to the in-process scan at every shard count × thread
// count. If this holds, shard count can never change what a request
// computes or how long the model says it took.
func TestScatterGatherBitwiseIdentical(t *testing.T) {
	dbs := testDBs(t)
	in := testInput(t, "2PV7")
	for _, threads := range []int{1, 3, 4} {
		ref := scanOnce(t, in, dbs, threads, nil)
		for _, shards := range []int{1, 2, 3, 5, 8, 16} {
			c := New(Config{Shards: shards, Fingerprint: dbs.Fingerprint()})
			got := scanOnce(t, in, dbs, threads, c.Scatter)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("threads=%d shards=%d: scattered result differs from single-node", threads, shards)
			}
			st := c.Stats()
			if st.Scans == 0 || st.Dispatches == 0 {
				t.Errorf("threads=%d shards=%d: no dispatch accounting: %+v", threads, shards, st)
			}
			if st.Failovers != 0 {
				t.Errorf("threads=%d shards=%d: unexpected failovers on healthy cluster: %d", threads, shards, st.Failovers)
			}
		}
	}
}

// TestScatterTableAcrossSamples widens the contract over the sample
// table: every Table II sample, one representative shard count, threads
// above and below the shard count.
func TestScatterTableAcrossSamples(t *testing.T) {
	dbs := testDBs(t)
	cases := []struct {
		sample  string
		threads int
		shards  int
	}{
		{"1YY9", 2, 7},
		{"7RCE", 4, 3},
		{"6QNR", 1, 16},
		{"promo", 3, 2},
	}
	for _, tc := range cases {
		in := testInput(t, tc.sample)
		ref := scanOnce(t, in, dbs, tc.threads, nil)
		c := New(Config{Shards: tc.shards, Fingerprint: dbs.Fingerprint()})
		got := scanOnce(t, in, dbs, tc.threads, c.Scatter)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("%s threads=%d shards=%d: scattered result differs", tc.sample, tc.threads, tc.shards)
		}
	}
}

// TestScatterFailoverIdentical kills nodes and asserts the surviving
// cluster still produces the identical result — failover moves work, it
// never changes it — with the failovers counted.
func TestScatterFailoverIdentical(t *testing.T) {
	dbs := testDBs(t)
	in := testInput(t, "2PV7")
	const threads, shards = 3, 8
	ref := scanOnce(t, in, dbs, threads, nil)

	c := New(Config{Shards: shards, Fingerprint: dbs.Fingerprint()})
	c.KillNode(0)
	c.KillNode(5)
	got := scanOnce(t, in, dbs, threads, c.Scatter)
	if !reflect.DeepEqual(ref, got) {
		t.Error("result differs after killing nodes 0 and 5")
	}
	st := c.Stats()
	if st.Failovers == 0 {
		t.Error("no failovers counted with two dead nodes")
	}
	if c.AliveNodes() != shards-2 {
		t.Errorf("AliveNodes = %d, want %d", c.AliveNodes(), shards-2)
	}
	if !st.PerNode[0].Killed || st.PerNode[0].Dispatches != 0 {
		t.Errorf("dead node 0 stats: %+v", st.PerNode[0])
	}

	// Revive and the cluster heals: identical result, no new failovers.
	c.ReviveNode(0)
	c.ReviveNode(5)
	before := c.Stats().Failovers
	got2 := scanOnce(t, in, dbs, threads, c.Scatter)
	if !reflect.DeepEqual(ref, got2) {
		t.Error("result differs after revival")
	}
	if after := c.Stats().Failovers; after != before {
		t.Errorf("failovers grew after revival: %d -> %d", before, after)
	}
}

// TestScatterAllNodesDead asserts a clean error (not a wrong result) when
// no node can serve a shard.
func TestScatterAllNodesDead(t *testing.T) {
	dbs := testDBs(t)
	in := testInput(t, "2PV7")
	c := New(Config{Shards: 3, Fingerprint: dbs.Fingerprint()})
	for i := 0; i < 3; i++ {
		c.KillNode(i)
	}
	_, err := msa.Run(in, msa.Options{Threads: 2, DBs: dbs, AllowMissingDB: true, Scatter: c.Scatter})
	if err == nil {
		t.Fatal("scan succeeded with every node dead")
	}
}

// TestShardPlanInvariants checks the plan arithmetic: shard ranges
// partition [0, n) exactly, owners stay in range, MaxShare is a true
// maximum, and the plan is a pure function of the fingerprint.
func TestShardPlanInvariants(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 7, 16, 33} {
		p := NewShardPlan("fp-test", shards)
		for _, n := range []int{0, 1, 7, 120, 121} {
			next := 0
			maxLen := 0
			for s := 0; s < shards; s++ {
				lo, hi := p.Range(n, s)
				if lo != next || hi < lo {
					t.Fatalf("shards=%d n=%d s=%d: range [%d,%d) does not continue from %d", shards, n, s, lo, hi, next)
				}
				if hi-lo > maxLen {
					maxLen = hi - lo
				}
				next = hi
			}
			if next != n {
				t.Fatalf("shards=%d n=%d: ranges end at %d", shards, n, next)
			}
			if n > 0 {
				if got, want := p.MaxShare(n), float64(maxLen)/float64(n); got != want {
					t.Fatalf("shards=%d n=%d: MaxShare = %v, want %v", shards, n, got, want)
				}
			}
		}
		for s := 0; s < shards; s++ {
			o := p.Owner("uniref_s", s)
			if o < 0 || o >= shards {
				t.Fatalf("Owner out of range: %d", o)
			}
			if o2 := NewShardPlan("fp-test", shards).Owner("uniref_s", s); o2 != o {
				t.Fatal("Owner not stable across identical plans")
			}
		}
	}
	// Different databases rotate ownership differently (load spreading).
	p := NewShardPlan("fp-test", 8)
	same := true
	for s := 0; s < 8; s++ {
		if p.Owner("uniref_s", s) != p.Owner("rfam_s", s) {
			same = false
		}
	}
	if same {
		t.Error("every database maps shards to identical owners; rotation is not spreading load")
	}
}

// TestScatterContextCancel: a canceled scan returns the context error
// instead of a partial result.
func TestScatterContextCancel(t *testing.T) {
	dbs := testDBs(t)
	in := testInput(t, "2PV7")
	c := New(Config{Shards: 4, Fingerprint: dbs.Fingerprint()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := msa.RunCtx(ctx, in, msa.Options{Threads: 2, DBs: dbs, AllowMissingDB: true, Scatter: c.Scatter})
	if err == nil {
		t.Fatal("scan succeeded under canceled context")
	}
}
