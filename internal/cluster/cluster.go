// Package cluster is the multi-node scale-out layer: it shards the MSA
// database scan across N simulated storage nodes (scatter-gather) and
// spreads serving traffic across R replicated servers behind a
// health-aware router.
//
// The paper's workload characterization shows MSA search over GiB-scale
// databases dominating end-to-end latency; a single process caps how far
// the ROADMAP's "heavy traffic" goal can scale. Following ParaFold's
// CPU/GPU stage split across machines (PAPERS.md), this package splits
// the remaining monolith two ways:
//
//   - Sharding (scatter.go): every database scan is scattered to shard
//     nodes, each owning a contiguous record range, and gathered through
//     the same deterministic hmmer.MergeResults the in-process engine
//     uses. The determinism contract from PR 1 extends node-wise: the
//     merged result — hits, counters, and per-worker metering — is
//     bitwise-identical to the single-node scan at every shard count, so
//     scaling out can never change what a request computes.
//
//   - Replication (router.go): R serve.Server replicas share one suite
//     (and optionally one cache), and a router steers each request to the
//     healthiest least-loaded replica, consuming the same readiness and
//     breaker state the HTTP /v1/readyz endpoint exposes. A replica that
//     dies mid-request is failed over with the request's chain checkpoint,
//     so finished chains are never recomputed.
//
// Network cost is modeled, not real: scatter RPCs charge latency plus
// payload bytes over a configured link (NetModel), and the accounting
// feeds the scaling curve (scaling.go) rather than the request results —
// which is exactly what keeps the results shard-count-independent while
// the throughput model stays honest about coordination overhead.
package cluster

import (
	"fmt"
	"hash/fnv"
)

// NetModel prices one simulated scatter RPC: a fixed per-operation latency
// plus payload bytes over a bandwidth-limited link. The zero value is
// DefaultNet via withDefaults.
type NetModel struct {
	// LatencySeconds is the per-RPC round-trip latency floor.
	LatencySeconds float64
	// GBps is the link bandwidth for payload bytes.
	GBps float64
}

// DefaultNet models an intra-cluster 25 GbE-class link: 200µs RPC
// round-trip, ~3 GB/s effective payload bandwidth.
func DefaultNet() NetModel {
	return NetModel{LatencySeconds: 200e-6, GBps: 3}
}

func (n NetModel) withDefaults() NetModel {
	if n.LatencySeconds <= 0 {
		n.LatencySeconds = DefaultNet().LatencySeconds
	}
	if n.GBps <= 0 {
		n.GBps = DefaultNet().GBps
	}
	return n
}

// Cost returns the modeled seconds to move payload bytes in one RPC.
func (n NetModel) Cost(bytes int64) float64 {
	return n.LatencySeconds + float64(bytes)/(n.GBps*1e9)
}

// ShardPlan maps (database, record range) to shard nodes. The identity is
// derived from msa.DBSet.Fingerprint, so two clusters over the same
// database content agree on ownership with no coordination — content
// addressing, the same property the chain cache keys rely on.
type ShardPlan struct {
	// Shards is the node count N.
	Shards int
	// identity is the fnv64a of the database-set fingerprint.
	identity uint64
}

// NewShardPlan builds the plan for N nodes over the database set named by
// fingerprint (msa.DBSet.Fingerprint()).
func NewShardPlan(fingerprint string, shards int) ShardPlan {
	if shards <= 0 {
		shards = 1
	}
	h := fnv.New64a()
	h.Write([]byte(fingerprint))
	return ShardPlan{Shards: shards, identity: h.Sum64()}
}

// Range returns shard s's contiguous record range [lo, hi) of a database
// with n records — the same arithmetic parallel.Shards uses for the
// in-process thread split, so shard boundaries are stable across the
// codebase.
func (p ShardPlan) Range(n, s int) (lo, hi int) {
	return n * s / p.Shards, n * (s + 1) / p.Shards
}

// Owner returns the node index that owns shard s of the named database.
// The per-database rotation (derived from the plan identity) spreads each
// database's shards across different nodes, so losing one node degrades
// every database a little instead of one database entirely.
func (p ShardPlan) Owner(dbName string, s int) int {
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x|%s", p.identity, dbName)
	return (s + int(h.Sum64()%uint64(p.Shards))) % p.Shards
}

// ShardID names shard s of a database for logs and counters.
func (p ShardPlan) ShardID(dbName string, s int) string {
	return fmt.Sprintf("%s/%d of %d", dbName, s, p.Shards)
}

// MaxShare returns the largest fraction of an n-record database any single
// shard holds — the scan-time bound for the scatter-gather, since shards
// run in parallel across nodes and the slowest (largest) one gates the
// gather.
func (p ShardPlan) MaxShare(n int) float64 {
	if n <= 0 {
		return 0
	}
	max := 0
	for s := 0; s < p.Shards; s++ {
		lo, hi := p.Range(n, s)
		if hi-lo > max {
			max = hi - lo
		}
	}
	return float64(max) / float64(n)
}
