package cluster

import (
	"testing"
)

func syntheticPoints() []RequestPoint {
	// Shapes from a typical measured trace: MSA-dominated requests with a
	// tiny serial fraction (the scan is ~1e13 scaled parallel instructions
	// against ~1e6 of serial merge/assembly work).
	return []RequestPoint{
		{Sample: "2PV7", MSASeconds: 900, InferenceSeconds: 40, SerialFraction: 2e-6},
		{Sample: "1YY9", MSASeconds: 1400, InferenceSeconds: 70, SerialFraction: 1e-6},
		{Sample: "6QNR", MSASeconds: 2100, InferenceSeconds: 260, SerialFraction: 3e-6},
	}
}

func TestScalingCurveEfficiencyGate(t *testing.T) {
	np := NetProfile{ScansPerRequest: 10, BytesPerScan: 64 << 10}
	curve := BuildScalingCurve(syntheticPoints(), []int{1, 2, 4, 8, 16}, []int{1, 2, 4}, 120, "fp", np, DefaultNet(), 4, 2)
	if got, want := len(curve.Points), 15; got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}
	eff := curve.ShardEfficiencyAt(16)
	if eff < 0.8 {
		t.Errorf("shard efficiency at 16 = %.3f, want ≥ 0.8 (the near-linear acceptance gate)", eff)
	}
	if one := curve.ShardEfficiencyAt(1); one < 0.999 || one > 1.001 {
		t.Errorf("shard efficiency at 1 = %.3f, want 1.0", one)
	}
}

func TestScalingMonotonicity(t *testing.T) {
	np := NetProfile{ScansPerRequest: 10, BytesPerScan: 64 << 10}
	curve := BuildScalingCurve(syntheticPoints(), []int{1, 2, 4, 8, 16}, []int{1, 2, 4}, 120, "fp", np, DefaultNet(), 4, 2)
	byCell := make(map[[2]int]ScalingPoint)
	for _, p := range curve.Points {
		byCell[[2]int{p.Shards, p.Replicas}] = p
	}
	// More shards → per-request MSA time never grows.
	prev := -1.0
	for _, n := range []int{16, 8, 4, 2, 1} {
		p := byCell[[2]int{n, 1}]
		if prev >= 0 && p.MSASecondsPerRequest < prev {
			t.Errorf("MSA seconds at %d shards (%.1f) below %.1f at more shards", n, p.MSASecondsPerRequest, prev)
		}
		prev = p.MSASecondsPerRequest
	}
	// More replicas → throughput never drops (at fixed shards).
	for _, n := range []int{1, 16} {
		last := 0.0
		for _, r := range []int{1, 2, 4} {
			p := byCell[[2]int{n, r}]
			if p.ThroughputRPS < last {
				t.Errorf("throughput dropped at shards=%d replicas=%d: %.4f < %.4f", n, r, p.ThroughputRPS, last)
			}
			last = p.ThroughputRPS
		}
	}
	// Amdahl sanity: a heavily serial workload must NOT report near-linear
	// scaling — the model has to punish what sharding cannot help.
	serial := []RequestPoint{{Sample: "s", MSASeconds: 1000, InferenceSeconds: 10, SerialFraction: 0.5}}
	sc := BuildScalingCurve(serial, []int{1, 16}, []int{1}, 120, "fp", np, DefaultNet(), 4, 2)
	if eff := sc.ShardEfficiencyAt(16); eff > 0.15 {
		t.Errorf("50%%-serial workload reports shard efficiency %.3f at 16 shards; the Amdahl term is broken", eff)
	}
}

func TestNetProfileFromStats(t *testing.T) {
	st := Stats{Scans: 40, NetBytes: 40 * 1000, NetOps: 40}
	np := NetProfileFromStats(st, 4)
	if np.ScansPerRequest != 10 {
		t.Errorf("ScansPerRequest = %v, want 10", np.ScansPerRequest)
	}
	if np.BytesPerScan != 1000 {
		t.Errorf("BytesPerScan = %v, want 1000", np.BytesPerScan)
	}
	zero := NetProfileFromStats(Stats{}, 0)
	if zero.ScansPerRequest != 0 || zero.BytesPerScan != 0 {
		t.Errorf("zero stats: %+v", zero)
	}
}
