package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"afsysbench/internal/hmmer"
	"afsysbench/internal/metering"
	"afsysbench/internal/msa"
)

// Config tunes a scatter-gather Cluster.
type Config struct {
	// Shards is the simulated node count N (default 1).
	Shards int
	// Net prices the scatter RPCs (zero value = DefaultNet).
	Net NetModel
	// Fingerprint is the database-set identity (msa.DBSet.Fingerprint())
	// the shard plan derives ownership from.
	Fingerprint string
}

// Cluster scatter-gathers MSA database scans across N simulated shard
// nodes. Its Scatter method satisfies msa.ScatterFunc and honors the
// bitwise-determinism contract: every scan segment is the intersection of
// a shard node's record range with a global worker's record range, and the
// gather appends each worker's segment events in ascending record order —
// so the merged result, including per-worker metering attribution, is
// identical to the in-process scan at the same thread count regardless of
// N, node deaths, or failovers.
type Cluster struct {
	plan ShardPlan
	net  NetModel

	mu    sync.Mutex
	nodes []nodeState
	stats Stats
}

type nodeState struct {
	alive      bool
	dispatches int64
	failovers  int64
	killed     bool // ever killed (stays set through Revive, for reporting)
}

// Stats is the cluster's dispatch accounting. Network seconds are modeled
// coordination overhead for the scaling curve; they never enter the
// request results (which is what keeps results shard-count-independent).
type Stats struct {
	// Scans counts scatter-gather scan operations (one per database scan).
	Scans int64 `json:"scans"`
	// Dispatches counts shard scans landed on a node; Failovers counts
	// attempts that had to move on — a dead owner skipped or a node that
	// died mid-scan.
	Dispatches int64 `json:"dispatches"`
	Failovers  int64 `json:"failovers"`
	// NetOps/NetBytes/NetSeconds price the scatter RPCs.
	NetOps     int64   `json:"net_ops"`
	NetBytes   int64   `json:"net_bytes"`
	NetSeconds float64 `json:"net_seconds"`
	// PerNode is one row per shard node, in node order.
	PerNode []NodeStats `json:"per_node"`
}

// NodeStats is one node's row in the cluster stats.
type NodeStats struct {
	Node       int   `json:"node"`
	Alive      bool  `json:"alive"`
	Killed     bool  `json:"killed,omitempty"`
	Dispatches int64 `json:"dispatches"`
	Failovers  int64 `json:"failovers"`
}

// New builds a cluster of cfg.Shards nodes, all alive.
func New(cfg Config) *Cluster {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	c := &Cluster{
		plan:  NewShardPlan(cfg.Fingerprint, cfg.Shards),
		net:   cfg.Net.withDefaults(),
		nodes: make([]nodeState, cfg.Shards),
	}
	for i := range c.nodes {
		c.nodes[i].alive = true
	}
	return c
}

// Plan returns the cluster's shard plan.
func (c *Cluster) Plan() ShardPlan { return c.plan }

// KillNode marks node i dead: its shards fail over to the next alive node
// in rotation, and a scan in flight on it is discarded and re-dispatched.
func (c *Cluster) KillNode(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.nodes) {
		c.nodes[i].alive = false
		c.nodes[i].killed = true
	}
}

// ReviveNode brings node i back into rotation.
func (c *Cluster) ReviveNode(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.nodes) {
		c.nodes[i].alive = true
	}
}

// NodeAlive reports whether node i is in rotation.
func (c *Cluster) NodeAlive(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return i >= 0 && i < len(c.nodes) && c.nodes[i].alive
}

// AliveNodes counts nodes in rotation.
func (c *Cluster) AliveNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, nd := range c.nodes {
		if nd.alive {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the dispatch accounting.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.PerNode = make([]NodeStats, len(c.nodes))
	for i, nd := range c.nodes {
		st.PerNode[i] = NodeStats{
			Node:       i,
			Alive:      nd.alive,
			Killed:     nd.killed,
			Dispatches: nd.dispatches,
			Failovers:  nd.failovers,
		}
	}
	return st
}

// segment is one scan unit: the intersection of shard `shard`'s record
// range with global worker `worker`'s range. Its events accumulate into a
// private accumulator and are appended to the worker's accumulator at
// gather time, in ascending record order.
type segment struct {
	worker int
	shard  int
	lo, hi int
	res    *hmmer.Result
	acc    *metering.Accumulator
}

// Scatter is the msa.ScatterFunc implementation: split the database into
// (shard × worker) intersection segments, dispatch each shard's segments
// to its owner node (failing over along the rotation when nodes are dead
// or die mid-scan), then gather — merge the hit lists with
// hmmer.MergeResults and append each worker's segment events in record
// order.
func (c *Cluster) Scatter(ctx context.Context, req msa.ScatterRequest) (*hmmer.Result, error) {
	n := len(req.DB.Seqs)
	t := req.Threads
	c.mu.Lock()
	c.stats.Scans++
	c.mu.Unlock()

	// Build the segment list. Worker spans use the same contiguous-split
	// arithmetic as parallel.Shards, so segment boundaries nest exactly
	// inside the single-node per-worker ranges.
	byShard := make([][]*segment, c.plan.Shards)
	var segs []*segment
	for s := 0; s < c.plan.Shards; s++ {
		slo, shi := c.plan.Range(n, s)
		for w := 0; w < t; w++ {
			wlo, whi := n*w/t, n*(w+1)/t
			lo, hi := maxInt(slo, wlo), minInt(shi, whi)
			if lo >= hi {
				continue
			}
			g := &segment{worker: w, shard: s, lo: lo, hi: hi}
			segs = append(segs, g)
			byShard[s] = append(byShard[s], g)
		}
	}

	// Dispatch each non-empty shard concurrently — the scatter.
	var wg sync.WaitGroup
	errs := make([]error, c.plan.Shards)
	for s := 0; s < c.plan.Shards; s++ {
		if len(byShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = c.dispatch(ctx, s, req, byShard[s])
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Gather. Segment events append to their worker's accumulator in
	// ascending record order — the exact sequence the in-process scan
	// would have produced — and the parts merge through the same
	// deterministic MergeResults.
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].worker != segs[j].worker {
			return segs[i].worker < segs[j].worker
		}
		return segs[i].lo < segs[j].lo
	})
	parts := make([]*hmmer.Result, 0, len(segs))
	for _, g := range segs {
		req.Workers[g.worker].Events = append(req.Workers[g.worker].Events, g.acc.Events...)
		parts = append(parts, g.res)
	}
	return hmmer.MergeResults(req.Query.ID, parts), nil
}

// dispatch runs one shard's segments on a node, walking the ownership
// rotation until an alive node completes them. A node that is dead at
// dispatch time, or that is killed while the scan is in flight, counts one
// failover and the next candidate redoes the segments from scratch — the
// recompute is free of determinism risk because the scan is a pure
// function of the records and the profile.
func (c *Cluster) dispatch(ctx context.Context, shard int, req msa.ScatterRequest, segs []*segment) error {
	owner := c.plan.Owner(req.DB.Name, shard)
	for k := 0; k < c.plan.Shards; k++ {
		node := (owner + k) % c.plan.Shards
		if !c.NodeAlive(node) {
			c.noteFailover(node)
			continue
		}
		if err := c.runSegments(ctx, req, segs); err != nil {
			return err
		}
		if !c.NodeAlive(node) {
			// Killed mid-scan: the in-flight work is lost with the node.
			c.noteFailover(node)
			for _, g := range segs {
				g.res, g.acc = nil, nil
			}
			continue
		}
		c.noteDispatch(node, req, segs)
		return nil
	}
	return fmt.Errorf("cluster: shard %s unavailable: all %d nodes dead",
		c.plan.ShardID(req.DB.Name, shard), c.plan.Shards)
}

// runSegments scans each segment with a private scaled accumulator.
func (c *Cluster) runSegments(ctx context.Context, req msa.ScatterRequest, segs []*segment) error {
	for _, g := range segs {
		acc := &metering.Accumulator{}
		meter := metering.Scaled(acc, req.ScaleFactor)
		src := &hmmer.SliceSource{Seqs: req.DB.Seqs[g.lo:g.hi]}
		res, err := hmmer.ScanRecordsCtx(ctx, req.Profile, req.Query, src, req.DB.TotalResidues(), req.Search, meter)
		if err != nil {
			return err
		}
		g.res, g.acc = res, acc
	}
	return nil
}

func (c *Cluster) noteFailover(node int) {
	c.mu.Lock()
	c.stats.Failovers++
	c.nodes[node].failovers++
	c.mu.Unlock()
}

// noteDispatch records a successful shard dispatch and prices its RPC:
// the query and profile go out, the hit list and metering events come
// back. The modeled seconds land in Stats only — never in the result.
func (c *Cluster) noteDispatch(node int, req msa.ScatterRequest, segs []*segment) {
	reqBytes := int64(req.Query.Len()) + 512
	var respBytes int64
	for _, g := range segs {
		respBytes += int64(len(g.res.Hits))*96 + int64(len(g.acc.Events))*112 + 128
	}
	c.mu.Lock()
	c.stats.Dispatches++
	c.nodes[node].dispatches++
	c.stats.NetOps++
	c.stats.NetBytes += reqBytes + respBytes
	c.stats.NetSeconds += c.net.Cost(reqBytes + respBytes)
	c.mu.Unlock()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
