package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/resilience"
	"afsysbench/internal/serve"
)

var (
	suiteOnce   sync.Once
	suiteShared *core.Suite
	suiteErr    error
)

func testSuite(t *testing.T) *core.Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteShared, suiteErr = core.NewSuite()
	})
	if suiteErr != nil {
		t.Fatalf("NewSuite: %v", suiteErr)
	}
	return suiteShared
}

func mustFaults(t *testing.T, spec string) resilience.Faults {
	t.Helper()
	f, err := resilience.ParseFaults(spec)
	if err != nil {
		t.Fatalf("ParseFaults(%q): %v", spec, err)
	}
	return f
}

// TestRouterFailoverCheckpoint is the satellite-4 scenario: a replica
// dies mid-request (after finishing the MSA search, before the GPU
// hand-off — the worst moment, all the work done and none of it
// delivered) and the router's retry lands on a healthy replica that
// replays every checkpointed chain instead of recomputing them. Both
// replicas carry an open mgnify_s breaker so the reduced database profile
// — and therefore the checkpoint scope — matches across the failover, and
// the partial_msa annotation must survive onto the final status.
func TestRouterFailoverCheckpoint(t *testing.T) {
	suite := testSuite(t)
	base := serve.Config{
		Threads:          2,
		MSAWorkers:       2,
		GPUWorkers:       1,
		QueueDepth:       8,
		Faults:           mustFaults(t, "permanent:mgnify_s"),
		BreakerThreshold: 1,
	}
	victimCfg := base
	victimCfg.PanicHook = func(point string, ordinal int) {
		if point == "handoff" {
			panic("replica dying at MSA→GPU hand-off")
		}
	}
	victim := serve.NewWithSuite(suite, victimCfg)
	healthy := serve.NewWithSuite(suite, base)
	victim.Start()
	healthy.Start()
	defer victim.Stop()
	defer healthy.Stop()

	// Trip the mgnify_s breaker on both replicas: the permanent storage
	// fault makes the degradation ladder drop the database, which the
	// breaker (threshold 1) converts into an up-front skip for every
	// later request.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, srv := range []*serve.Server{victim, healthy} {
		if _, err := srv.Submit(serve.Request{Sample: "2PV7"}); err != nil {
			t.Fatalf("warmup submit: %v", err)
		}
		if err := srv.WaitIdle(ctx); err != nil {
			t.Fatalf("warmup WaitIdle: %v", err)
		}
		open := srv.Ready().OpenBreakers
		found := false
		for _, name := range open {
			if name == "mgnify_s" {
				found = true
			}
		}
		if !found {
			t.Fatalf("mgnify_s breaker not open after warmup: open=%v", open)
		}
	}

	// Both replicas are unready (open breakers), so the router falls back
	// to least-outstanding / lowest-index: the victim, replica 0.
	r := NewRouter([]*serve.Server{victim, healthy}, RouterConfig{})
	out, err := r.Do(ctx, serve.Request{Sample: "2PV7"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if out.Replica != 1 {
		t.Errorf("final replica = %d, want 1 (the healthy one)", out.Replica)
	}
	if out.Attempts < 2 {
		t.Errorf("attempts = %d, want ≥2 (a failover happened)", out.Attempts)
	}
	if out.Status.State != "done" {
		t.Fatalf("final state = %s (%s)", out.Status.State, out.Status.Error)
	}
	if !out.Status.PartialMSA {
		t.Error("partial_msa annotation lost across the failover")
	}
	if out.Status.ChainsRestored == 0 {
		t.Error("no chains replayed from checkpoint — the healthy replica recomputed the dead replica's work")
	}
	if out.Status.ChainsFresh != 0 {
		t.Errorf("chains_fresh = %d, want 0: every chain was checkpointed before the death", out.Status.ChainsFresh)
	}
	st := r.Stats()
	if st.Failovers == 0 {
		t.Errorf("router stats count no failovers: %+v", st)
	}
	if st.Completed != 1 {
		t.Errorf("completed = %d, want 1", st.Completed)
	}
}

// TestRouterKilledReplica: a killed replica rejects submissions, reports
// unready, and the router routes around it without losing requests.
func TestRouterKilledReplica(t *testing.T) {
	suite := testSuite(t)
	cfg := serve.Config{Threads: 2, MSAWorkers: 2, GPUWorkers: 1, QueueDepth: 8}
	a := serve.NewWithSuite(suite, cfg)
	b := serve.NewWithSuite(suite, cfg)
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()

	r := NewRouter([]*serve.Server{a, b}, RouterConfig{})
	r.Kill(0)
	if !a.Killed() {
		t.Fatal("replica 0 not killed")
	}
	if a.Ready().Ready {
		t.Error("killed replica reports ready")
	}
	if _, err := a.Submit(serve.Request{Sample: "1YY9"}); err == nil {
		t.Error("killed replica accepted a submission")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := r.Do(ctx, serve.Request{Sample: "1YY9"})
	if err != nil {
		t.Fatalf("Do with a killed replica: %v", err)
	}
	if out.Replica != 1 {
		t.Errorf("routed to replica %d, want 1", out.Replica)
	}
	if out.Status.State != "done" {
		t.Errorf("state = %s (%s)", out.Status.State, out.Status.Error)
	}
	st := r.Stats()
	if !st.PerReplica[0].Killed || st.PerReplica[0].Dispatches != 0 {
		t.Errorf("killed replica stats: %+v", st.PerReplica[0])
	}
}

// TestRouterKillMidFlight kills a replica while its jobs are in flight:
// every request must still complete (on the survivor) with the work
// moved, not lost.
func TestRouterKillMidFlight(t *testing.T) {
	suite := testSuite(t)
	cfg := serve.Config{Threads: 2, MSAWorkers: 1, GPUWorkers: 1, QueueDepth: 16}
	a := serve.NewWithSuite(suite, cfg)
	b := serve.NewWithSuite(suite, cfg)
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()

	r := NewRouter([]*serve.Server{a, b}, RouterConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	states := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := r.Do(ctx, serve.Request{Sample: "2PV7"})
			errs[i], states[i] = err, out.Status.State
		}(i)
	}
	// Let the fan-out land, then kill replica 0 under load.
	time.Sleep(5 * time.Millisecond)
	r.Kill(0)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Errorf("request %d failed: %v", i, errs[i])
		} else if states[i] != "done" {
			t.Errorf("request %d state = %s", i, states[i])
		}
	}
	if ph := b.PoolHealth(); !ph.FullStrength() {
		t.Errorf("survivor pool degraded: %+v", ph)
	}
}
