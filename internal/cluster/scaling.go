package cluster

import (
	"afsysbench/internal/core"
)

// RequestPoint is the per-request input to the scaling model, derived
// from a measured single-node pipeline result: the modeled MSA and
// inference times and the serial fraction of the MSA work (profile
// rebuilds, hit merging, feature assembly — the part sharding cannot
// touch, the Amdahl term).
type RequestPoint struct {
	Sample           string  `json:"sample"`
	MSASeconds       float64 `json:"msa_seconds"`
	InferenceSeconds float64 `json:"inference_seconds"`
	SerialFraction   float64 `json:"serial_fraction"`
}

// PointFromResult extracts a RequestPoint from a completed pipeline run.
func PointFromResult(res *core.PipelineResult) RequestPoint {
	p := RequestPoint{
		Sample:           res.Sample,
		MSASeconds:       res.MSASeconds,
		InferenceSeconds: res.Inference.Total(),
	}
	if d := res.MSAData; d != nil {
		var parallel uint64
		for _, w := range d.Workers {
			parallel += w.Totals().Instructions
		}
		if total := float64(parallel + d.SerialInstructions); total > 0 {
			p.SerialFraction = float64(d.SerialInstructions) / total
		}
	}
	return p
}

// NetProfile is the measured scatter cost shape of one cluster run: how
// many database scans a request performs and how many payload bytes one
// scan moves in total. Both are shard-count-independent (the events and
// hits a scan produces do not depend on how it was split), which is what
// lets one measured run extrapolate the whole N sweep.
type NetProfile struct {
	ScansPerRequest float64 `json:"scans_per_request"`
	BytesPerScan    float64 `json:"bytes_per_scan"`
}

// NetProfileFromStats derives the profile from a cluster run's stats.
func NetProfileFromStats(st Stats, requests int) NetProfile {
	p := NetProfile{}
	if requests > 0 {
		p.ScansPerRequest = float64(st.Scans) / float64(requests)
	}
	if st.Scans > 0 {
		p.BytesPerScan = float64(st.NetBytes) / float64(st.Scans)
	}
	return p
}

// perShardHeaderBytes is the fixed per-shard RPC framing added on top of
// the payload (which itself is N-independent).
const perShardHeaderBytes = 640

// netSecondsPerRequest models a request's scatter overhead at N shards:
// per scan, the RPCs fan out in parallel (one latency), the responses
// total the same payload regardless of N, and each shard adds fixed
// framing.
func netSecondsPerRequest(p NetProfile, net NetModel, shards int) float64 {
	if p.ScansPerRequest <= 0 {
		return 0
	}
	perScan := net.LatencySeconds + (p.BytesPerScan+float64(shards)*perShardHeaderBytes)/(net.GBps*1e9)
	return p.ScansPerRequest * perScan
}

// MSASecondsAtShards models one request's MSA time at N shards: the
// serial fraction is untouched, the parallel fraction shrinks to the
// largest shard's share (shards scan concurrently across nodes; the
// biggest one gates the gather), and the scatter RPCs add network time.
func MSASecondsAtShards(p RequestPoint, plan ShardPlan, records int, np NetProfile, net NetModel) float64 {
	share := plan.MaxShare(records)
	return p.MSASeconds*(p.SerialFraction+(1-p.SerialFraction)*share) +
		netSecondsPerRequest(np, net, plan.Shards)
}

// ScalingPoint is one (shards × replicas) cell of the scaling curve.
type ScalingPoint struct {
	Shards   int `json:"shards"`
	Replicas int `json:"replicas"`
	// MSASecondsPerRequest and NetSecondsPerRequest are trace means.
	MSASecondsPerRequest float64 `json:"msa_seconds_per_request"`
	NetSecondsPerRequest float64 `json:"net_seconds_per_request"`
	// ShardSpeedup is mean single-shard MSA time over mean N-shard MSA
	// time; ShardEfficiency divides it by N (1.0 = perfectly linear).
	ShardSpeedup    float64 `json:"shard_speedup"`
	ShardEfficiency float64 `json:"shard_efficiency"`
	// ModeledMakespan list-schedules the trace over R replicas' worker
	// pools; ThroughputRPS is requests over that makespan.
	ModeledMakespan float64 `json:"modeled_makespan_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	// ReplicaEfficiency is throughput over R × the same-N single-replica
	// throughput (1.0 = replicas scale linearly).
	ReplicaEfficiency float64 `json:"replica_efficiency"`
}

// ScalingCurve is the BENCH_serve.json cluster scaling section: the
// modeled throughput surface over the N×R sweep, anchored in a measured
// single-node trace and a measured cluster net profile.
type ScalingCurve struct {
	Records    int            `json:"records_per_db"`
	Net        NetModel       `json:"net_model"`
	NetProfile NetProfile     `json:"net_profile"`
	MSAWorkers int            `json:"msa_workers_per_replica"`
	GPUWorkers int            `json:"gpu_workers_per_replica"`
	Requests   []RequestPoint `json:"request_points"`
	Points     []ScalingPoint `json:"points"`
}

// BuildScalingCurve sweeps shardCounts × replicaCounts over a measured
// trace. fingerprint seeds the shard plans (ownership does not affect the
// times, but keeps the plans identical to the live cluster's).
func BuildScalingCurve(points []RequestPoint, shardCounts, replicaCounts []int, records int, fingerprint string, np NetProfile, net NetModel, msaWorkers, gpuWorkers int) ScalingCurve {
	net = net.withDefaults()
	curve := ScalingCurve{
		Records:    records,
		Net:        net,
		NetProfile: np,
		MSAWorkers: msaWorkers,
		GPUWorkers: gpuWorkers,
		Requests:   points,
	}
	base := meanMSA(points, NewShardPlan(fingerprint, 1), records, np, net)
	for _, n := range shardCounts {
		plan := NewShardPlan(fingerprint, n)
		msaMean := meanMSA(points, plan, records, np, net)
		oneReplica := float64(len(points)) / makespan(points, plan, records, np, net, 1, msaWorkers, gpuWorkers)
		for _, r := range replicaCounts {
			mk := makespan(points, plan, records, np, net, r, msaWorkers, gpuWorkers)
			pt := ScalingPoint{
				Shards:               n,
				Replicas:             r,
				MSASecondsPerRequest: msaMean,
				NetSecondsPerRequest: netSecondsPerRequest(np, net, n),
				ModeledMakespan:      mk,
			}
			if msaMean > 0 {
				pt.ShardSpeedup = base / msaMean
				pt.ShardEfficiency = pt.ShardSpeedup / float64(n)
			}
			if mk > 0 {
				pt.ThroughputRPS = float64(len(points)) / mk
				if oneReplica > 0 {
					pt.ReplicaEfficiency = pt.ThroughputRPS / (float64(r) * oneReplica)
				}
			}
			curve.Points = append(curve.Points, pt)
		}
	}
	return curve
}

// ShardEfficiencyAt returns the curve's shard efficiency at a shard count
// (replica-independent), or 0 when the count was not swept. The chaos and
// smoke gates assert this ≥ 0.8 at 16 shards — the near-linear claim.
func (c ScalingCurve) ShardEfficiencyAt(shards int) float64 {
	for _, p := range c.Points {
		if p.Shards == shards {
			return p.ShardEfficiency
		}
	}
	return 0
}

func meanMSA(points []RequestPoint, plan ShardPlan, records int, np NetProfile, net NetModel) float64 {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range points {
		sum += MSASecondsAtShards(p, plan, records, np, net)
	}
	return sum / float64(len(points))
}

// makespan list-schedules the trace on R replicas' pools: each request
// takes the earliest-free MSA lane (R×msaWorkers lanes), then the
// earliest-free GPU lane (R×gpuWorkers lanes) no earlier than its MSA
// finish — the same greedy model serve.ModeledSchedule uses, widened
// across replicas.
func makespan(points []RequestPoint, plan ShardPlan, records int, np NetProfile, net NetModel, replicas, msaWorkers, gpuWorkers int) float64 {
	if replicas <= 0 || msaWorkers <= 0 || gpuWorkers <= 0 {
		return 0
	}
	msaLanes := make([]float64, replicas*msaWorkers)
	gpuLanes := make([]float64, replicas*gpuWorkers)
	var end float64
	for _, p := range points {
		m := MSASecondsAtShards(p, plan, records, np, net)
		i := argminLane(msaLanes)
		msaEnd := msaLanes[i] + m
		msaLanes[i] = msaEnd
		j := argminLane(gpuLanes)
		start := msaEnd
		if gpuLanes[j] > start {
			start = gpuLanes[j]
		}
		gpuLanes[j] = start + p.InferenceSeconds
		if gpuLanes[j] > end {
			end = gpuLanes[j]
		}
	}
	return end
}

func argminLane(lanes []float64) int {
	best := 0
	for i, v := range lanes {
		if v < lanes[best] {
			best = i
		}
	}
	return best
}
