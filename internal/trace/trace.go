// Package trace builds Nsight-Systems-style phase timelines for pipeline
// runs: ordered spans with begin/end times, rendered as a text gantt chart.
// It is the suite's stand-in for the paper's nsys profiling of the
// inference phase (Figure 8).
package trace

import (
	"fmt"
	"io"
	"strings"

	"afsysbench/internal/simgpu"
)

// Span is one timeline interval.
type Span struct {
	Name  string
	Start float64 // seconds from timeline origin
	End   float64
}

// Duration returns the span length.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline is an ordered list of spans.
type Timeline struct {
	Title string
	Spans []Span
}

// Add appends a span of the given duration after the last span and returns
// its index.
func (t *Timeline) Add(name string, duration float64) int {
	start := 0.0
	if n := len(t.Spans); n > 0 {
		start = t.Spans[n-1].End
	}
	t.Spans = append(t.Spans, Span{Name: name, Start: start, End: start + duration})
	return len(t.Spans) - 1
}

// Total returns the timeline end time.
func (t *Timeline) Total() float64 {
	if len(t.Spans) == 0 {
		return 0
	}
	return t.Spans[len(t.Spans)-1].End
}

// FromInference builds the inference-phase timeline from a phase breakdown.
func FromInference(title string, pb simgpu.PhaseBreakdown) *Timeline {
	tl := &Timeline{Title: title}
	if pb.InitSeconds > 0 {
		tl.Add("gpu init", pb.InitSeconds)
	}
	if pb.CompileSeconds > 0 {
		tl.Add("xla compile", pb.CompileSeconds)
	}
	name := "gpu compute"
	if pb.Spilled {
		name = "gpu compute (unified mem)"
	}
	tl.Add(name, pb.ComputeSeconds)
	tl.Add("finalize", pb.FinalizeSeconds)
	return tl
}

// FromLayers builds a compute-phase timeline from per-layer GPU times,
// ordered as given (the JAX-profiler view behind Figure 9 / Table VI).
func FromLayers(title string, layers []simgpu.LayerTime) *Timeline {
	tl := &Timeline{Title: title}
	for _, l := range layers {
		tl.Add(l.Module+": "+l.Layer, l.Seconds)
	}
	return tl
}

// Render prints the timeline as a text gantt chart of the given width.
func (t *Timeline) Render(w io.Writer, width int) error {
	if width <= 0 {
		width = 60
	}
	total := t.Total()
	if total == 0 {
		return fmt.Errorf("trace: empty timeline")
	}
	if _, err := fmt.Fprintf(w, "%s (total %.1fs)\n", t.Title, total); err != nil {
		return err
	}
	nameW := 0
	for _, s := range t.Spans {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range t.Spans {
		startCol := int(s.Start / total * float64(width))
		lenCols := int(s.Duration() / total * float64(width))
		if lenCols < 1 {
			lenCols = 1
		}
		if startCol+lenCols > width {
			lenCols = width - startCol
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat("█", lenCols)
		if _, err := fmt.Fprintf(w, "%-*s |%-*s| %7.1fs (%4.1f%%)\n",
			nameW, s.Name, width, bar, s.Duration(), 100*s.Duration()/total); err != nil {
			return err
		}
	}
	return nil
}

// Lanes is a multi-lane timeline (e.g. the batch scheduler's CPU and GPU
// stages) rendered as a two-row gantt chart over a common time axis.
type Lanes struct {
	Title string
	Lane  map[string][]Span
	Order []string
}

// AddSpan appends a span to a lane, creating the lane on first use.
func (l *Lanes) AddSpan(lane, name string, start, end float64) {
	if l.Lane == nil {
		l.Lane = make(map[string][]Span)
	}
	if _, ok := l.Lane[lane]; !ok {
		l.Order = append(l.Order, lane)
	}
	l.Lane[lane] = append(l.Lane[lane], Span{Name: name, Start: start, End: end})
}

// Total returns the latest end time across lanes.
func (l *Lanes) Total() float64 {
	var total float64
	for _, spans := range l.Lane {
		for _, s := range spans {
			if s.End > total {
				total = s.End
			}
		}
	}
	return total
}

// Render prints each lane as one row; span names mark their start columns.
func (l *Lanes) Render(w io.Writer, width int) error {
	if width <= 0 {
		width = 70
	}
	total := l.Total()
	if total == 0 {
		return fmt.Errorf("trace: empty lanes")
	}
	if _, err := fmt.Fprintf(w, "%s (total %.1fs)\n", l.Title, total); err != nil {
		return err
	}
	laneW := 0
	for _, name := range l.Order {
		if len(name) > laneW {
			laneW = len(name)
		}
	}
	for _, name := range l.Order {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range l.Lane[name] {
			startCol := int(s.Start / total * float64(width))
			endCol := int(s.End / total * float64(width))
			if endCol <= startCol {
				endCol = startCol + 1
			}
			if endCol > width {
				endCol = width
			}
			for i := startCol; i < endCol; i++ {
				row[i] = '#'
			}
			// Label the span start where it fits.
			for i, c := range []byte(s.Name) {
				if startCol+i < endCol-0 && startCol+i < width {
					row[startCol+i] = c
				} else {
					break
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", laneW, name, row); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks span ordering invariants (monotone, non-negative).
func (t *Timeline) Validate() error {
	prevEnd := 0.0
	for i, s := range t.Spans {
		if s.End < s.Start {
			return fmt.Errorf("trace: span %d (%s) ends before it starts", i, s.Name)
		}
		if s.Start < prevEnd {
			return fmt.Errorf("trace: span %d (%s) overlaps its predecessor", i, s.Name)
		}
		prevEnd = s.End
	}
	return nil
}
