package trace

import (
	"bytes"
	"strings"
	"testing"

	"afsysbench/internal/simgpu"
)

func TestAddAndTotal(t *testing.T) {
	var tl Timeline
	tl.Add("a", 2)
	tl.Add("b", 3)
	if tl.Total() != 5 {
		t.Errorf("total = %v", tl.Total())
	}
	if tl.Spans[1].Start != 2 || tl.Spans[1].End != 5 {
		t.Errorf("span chaining wrong: %+v", tl.Spans[1])
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEmptyTimeline(t *testing.T) {
	var tl Timeline
	if tl.Total() != 0 {
		t.Error("empty total != 0")
	}
	var buf bytes.Buffer
	if err := tl.Render(&buf, 40); err == nil {
		t.Error("rendering empty timeline should error")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	tl := Timeline{Spans: []Span{{Name: "a", Start: 0, End: 5}, {Name: "b", Start: 3, End: 6}}}
	if err := tl.Validate(); err == nil {
		t.Error("overlap accepted")
	}
	tl = Timeline{Spans: []Span{{Name: "a", Start: 2, End: 1}}}
	if err := tl.Validate(); err == nil {
		t.Error("negative span accepted")
	}
}

func TestFromInference(t *testing.T) {
	pb := simgpu.PhaseBreakdown{
		InitSeconds:     10,
		CompileSeconds:  20,
		ComputeSeconds:  30,
		FinalizeSeconds: 5,
	}
	tl := FromInference("2PV7 on Server", pb)
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tl.Total() != 65 {
		t.Errorf("total = %v", tl.Total())
	}
	if len(tl.Spans) != 4 {
		t.Errorf("spans = %d", len(tl.Spans))
	}
	if tl.Spans[0].Name != "gpu init" || tl.Spans[2].Name != "gpu compute" {
		t.Errorf("span names wrong: %+v", tl.Spans)
	}
}

func TestFromInferenceWarmStart(t *testing.T) {
	pb := simgpu.PhaseBreakdown{ComputeSeconds: 30, FinalizeSeconds: 5}
	tl := FromInference("warm", pb)
	if len(tl.Spans) != 2 {
		t.Errorf("warm-start timeline has %d spans, want 2", len(tl.Spans))
	}
}

func TestFromInferenceSpill(t *testing.T) {
	pb := simgpu.PhaseBreakdown{ComputeSeconds: 30, FinalizeSeconds: 5, Spilled: true}
	tl := FromInference("spill", pb)
	found := false
	for _, s := range tl.Spans {
		if strings.Contains(s.Name, "unified mem") {
			found = true
		}
	}
	if !found {
		t.Error("spill not annotated")
	}
}

func TestRenderProportions(t *testing.T) {
	tl := Timeline{Title: "x"}
	tl.Add("short", 1)
	tl.Add("long", 9)
	var buf bytes.Buffer
	if err := tl.Render(&buf, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "x (total 10.0s)") {
		t.Errorf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	shortBar := strings.Count(lines[1], "█")
	longBar := strings.Count(lines[2], "█")
	if longBar <= shortBar*4 {
		t.Errorf("bar proportions wrong: short=%d long=%d", shortBar, longBar)
	}
	if !strings.Contains(lines[1], "10.0%") || !strings.Contains(lines[2], "90.0%") {
		t.Errorf("percentages wrong:\n%s", out)
	}
}

func TestLanesRender(t *testing.T) {
	var l Lanes
	l.Title = "batch"
	l.AddSpan("CPU", "m1", 0, 10)
	l.AddSpan("CPU", "m2", 10, 25)
	l.AddSpan("GPU", "i1", 10, 14)
	l.AddSpan("GPU", "i2", 25, 30)
	if l.Total() != 30 {
		t.Errorf("total = %v", l.Total())
	}
	var buf bytes.Buffer
	if err := l.Render(&buf, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "batch (total 30.0s)") {
		t.Errorf("header wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "CPU") || !strings.HasPrefix(lines[2], "GPU") {
		t.Error("lane order wrong")
	}
	// GPU lane has an idle gap between its spans.
	gpuRow := lines[2]
	if !strings.Contains(gpuRow, " ") {
		t.Error("GPU idle gap missing")
	}
}

func TestLanesEmpty(t *testing.T) {
	var l Lanes
	if err := l.Render(&bytes.Buffer{}, 40); err == nil {
		t.Error("empty lanes rendered")
	}
}

func TestFromLayers(t *testing.T) {
	layers := []simgpu.LayerTime{
		{Module: "Pairformer", Layer: "triangle attention", Seconds: 2},
		{Module: "Diffusion", Layer: "global attention", Seconds: 13},
	}
	tl := FromLayers("layers", layers)
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tl.Total() != 15 {
		t.Errorf("total = %v", tl.Total())
	}
	if tl.Spans[1].Name != "Diffusion: global attention" {
		t.Errorf("span name %q", tl.Spans[1].Name)
	}
}
