// Package batch implements the shape-bucketing policy behind cross-request
// GPU batching (DESIGN §14). XLA compiles one executable per tensor shape,
// so a serving tier that dispatched every request at its exact token count
// would compile per distinct input and could never coalesce two requests
// into one device launch. The policy here pads token counts up into a small
// configurable set of buckets: requests in the same bucket share a compiled
// graph and can ride the same batched dispatch, at the price of padding
// waste (computed tokens that belong to no request). The package also
// carries the padding-waste accounting and the deterministic batch-
// composition plan that the serving dispatcher implements incrementally —
// composition is a pure function of the arrival order and the policy,
// never of worker timing.
package batch

import "sort"

// DefaultBuckets is the stock pad-boundary set: fine steps where the
// Table II samples live (128–1024 tokens, where compile overhead dominates
// and padding percentage-wise hurts most) and coarse steps above. Tokens
// beyond the last bucket fall out of the policy and run at their exact
// size (their own implicit bucket).
func DefaultBuckets() []int {
	return []int{128, 256, 384, 512, 768, 1024, 1536, 2048}
}

// Policy maps token counts to pad buckets. The zero value has no buckets:
// every token count is its own bucket (exact-shape keying, no padding).
type Policy struct {
	buckets []int // sorted ascending, positive, unique
}

// NewPolicy builds a policy from pad boundaries. Non-positive entries are
// dropped and duplicates collapsed; the input slice is not retained. An
// empty (or fully dropped) list yields the exact-shape zero policy.
func NewPolicy(buckets []int) Policy {
	cleaned := make([]int, 0, len(buckets))
	for _, b := range buckets {
		if b > 0 {
			cleaned = append(cleaned, b)
		}
	}
	sort.Ints(cleaned)
	uniq := cleaned[:0]
	for i, b := range cleaned {
		if i == 0 || b != cleaned[i-1] {
			uniq = append(uniq, b)
		}
	}
	return Policy{buckets: uniq}
}

// Default returns the policy over DefaultBuckets.
func Default() Policy { return NewPolicy(DefaultBuckets()) }

// Buckets returns a copy of the pad boundaries (nil for the zero policy).
func (p Policy) Buckets() []int {
	if len(p.buckets) == 0 {
		return nil
	}
	out := make([]int, len(p.buckets))
	copy(out, p.buckets)
	return out
}

// BucketFor returns the smallest bucket that holds tokens, and false when
// tokens exceeds every bucket (or the policy has none) — the caller then
// uses the exact size as an implicit overflow bucket.
func (p Policy) BucketFor(tokens int) (int, bool) {
	i := sort.SearchInts(p.buckets, tokens)
	if i == len(p.buckets) {
		return 0, false
	}
	return p.buckets[i], true
}

// PadTo returns the padded token count for a request: its bucket, or the
// exact count when it overflows the policy.
func (p Policy) PadTo(tokens int) int {
	if b, ok := p.BucketFor(tokens); ok {
		return b
	}
	return tokens
}

// WastePct returns the padding waste of running tokens at its padded size:
// the fraction of dispatched tokens that belong to no request.
func (p Policy) WastePct(tokens int) float64 {
	padded := p.PadTo(tokens)
	if padded <= 0 {
		return 0
	}
	return 100 * float64(padded-tokens) / float64(padded)
}

// Item is one arrival in a batch-composition plan: its token count and the
// lane it must dispatch on (requests on different machines or thread
// settings never share a batch; the serving layer encodes that in Lane).
type Item struct {
	Tokens int
	Lane   string
}

// Plan groups an arrival sequence into batches: maximal runs of
// consecutive arrivals sharing a (bucket, lane), split when capFor(bucket)
// members accumulate. It returns the batches in dispatch order as index
// slices into items. This is the specification the serving dispatcher
// implements incrementally — for a fully queued arrival stream the live
// composition equals Plan's, which is what the determinism tests pin.
// capFor may be nil (no cap); caps below 1 are treated as 1.
func (p Policy) Plan(items []Item, capFor func(bucket int) int) [][]int {
	var out [][]int
	var open []int
	openBucket, openLane := 0, ""
	seal := func() {
		if len(open) > 0 {
			out = append(out, open)
			open = nil
		}
	}
	for i, it := range items {
		bucket := p.PadTo(it.Tokens)
		if len(open) > 0 && (bucket != openBucket || it.Lane != openLane) {
			seal()
		}
		open = append(open, i)
		openBucket, openLane = bucket, it.Lane
		limit := 0
		if capFor != nil {
			limit = capFor(bucket)
			if limit < 1 {
				limit = 1
			}
		}
		if limit > 0 && len(open) >= limit {
			seal()
		}
	}
	seal()
	return out
}

// BucketStats is one bucket's row of the padding-waste and compile-sharing
// report.
type BucketStats struct {
	// Bucket is the padded token count (an overflow request reports its
	// exact size here).
	Bucket int `json:"bucket"`
	// Requests counts members dispatched in this bucket; Batches the
	// dispatches that carried them.
	Requests int `json:"requests"`
	Batches  int `json:"batches"`
	// ActualTokens/PaddedTokens sum member token counts before and after
	// padding.
	ActualTokens int64 `json:"actual_tokens"`
	PaddedTokens int64 `json:"padded_tokens"`
	// CompileMisses counts dispatches that paid the bucket's XLA compile
	// (the compiled-graph cache missed); CompileHits the dispatches that
	// reused it.
	CompileMisses int64 `json:"compile_misses"`
	CompileHits   int64 `json:"compile_hits"`
}

// WastePct is the bucket's padding waste: padded-but-unowned tokens over
// dispatched tokens.
func (b BucketStats) WastePct() float64 {
	if b.PaddedTokens <= 0 {
		return 0
	}
	return 100 * float64(b.PaddedTokens-b.ActualTokens) / float64(b.PaddedTokens)
}

// MeanBatchSize is the bucket's average members per dispatch.
func (b BucketStats) MeanBatchSize() float64 {
	if b.Batches == 0 {
		return 0
	}
	return float64(b.Requests) / float64(b.Batches)
}

// Meter accumulates per-bucket batching accounting. Not safe for
// concurrent use — callers (the serving dispatcher) serialize around it.
type Meter struct {
	perBucket map[int]*BucketStats
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{perBucket: make(map[int]*BucketStats)} }

func (m *Meter) row(bucket int) *BucketStats {
	r := m.perBucket[bucket]
	if r == nil {
		r = &BucketStats{Bucket: bucket}
		m.perBucket[bucket] = r
	}
	return r
}

// ObserveJob records one member dispatched at tokens padded into bucket.
func (m *Meter) ObserveJob(bucket, tokens int) {
	r := m.row(bucket)
	r.Requests++
	r.ActualTokens += int64(tokens)
	r.PaddedTokens += int64(bucket)
}

// ObserveBatch records one dispatched batch in the bucket and whether it
// paid the bucket's compile (a compiled-graph cache miss).
func (m *Meter) ObserveBatch(bucket int, compileMiss bool) {
	r := m.row(bucket)
	r.Batches++
	if compileMiss {
		r.CompileMisses++
	} else {
		r.CompileHits++
	}
}

// Snapshot returns the per-bucket rows sorted by bucket.
func (m *Meter) Snapshot() []BucketStats {
	out := make([]BucketStats, 0, len(m.perBucket))
	for _, r := range m.perBucket {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}

// Totals returns the meter-wide member count and token sums.
func (m *Meter) Totals() (requests int, actual, padded int64) {
	for _, r := range m.perBucket {
		requests += r.Requests
		actual += r.ActualTokens
		padded += r.PaddedTokens
	}
	return
}
