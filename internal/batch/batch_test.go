package batch

import (
	"reflect"
	"testing"
)

func TestNewPolicySanitizes(t *testing.T) {
	p := NewPolicy([]int{512, -3, 256, 512, 0, 1024, 256})
	want := []int{256, 512, 1024}
	if got := p.Buckets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	if got := NewPolicy(nil).Buckets(); got != nil {
		t.Fatalf("empty policy buckets = %v, want nil", got)
	}
}

func TestBucketForEdges(t *testing.T) {
	p := NewPolicy([]int{256, 512, 1024})
	cases := []struct {
		tokens int
		bucket int
		ok     bool
	}{
		{1, 256, true},
		{256, 256, true}, // exact boundary stays in its bucket
		{257, 512, true},
		{512, 512, true},
		{1024, 1024, true},
		{1025, 0, false}, // overflow: caller uses exact size
	}
	for _, c := range cases {
		b, ok := p.BucketFor(c.tokens)
		if b != c.bucket || ok != c.ok {
			t.Errorf("BucketFor(%d) = (%d,%v), want (%d,%v)", c.tokens, b, ok, c.bucket, c.ok)
		}
	}
	if got := p.PadTo(1025); got != 1025 {
		t.Errorf("overflow PadTo = %d, want exact 1025", got)
	}
	// Zero policy: everything is exact-shape.
	var zero Policy
	if got := zero.PadTo(484); got != 484 {
		t.Errorf("zero-policy PadTo = %d, want 484", got)
	}
}

func TestWastePct(t *testing.T) {
	p := NewPolicy([]int{512})
	if got := p.WastePct(512); got != 0 {
		t.Errorf("exact fit waste = %v, want 0", got)
	}
	if got := p.WastePct(256); got != 50 {
		t.Errorf("half fill waste = %v, want 50", got)
	}
	if got := p.WastePct(600); got != 0 {
		t.Errorf("overflow waste = %v, want 0 (exact size)", got)
	}
}

func TestPlanGroupsRunsAndCaps(t *testing.T) {
	p := NewPolicy([]int{512, 1024})
	items := []Item{
		{484, "a"}, {484, "a"}, {242, "a"}, // one 512 run of 3
		{881, "a"},             // bucket change seals
		{484, "a"}, {484, "a"}, // back to 512: a new batch, never merged
		{484, "b"}, // lane change seals
	}
	got := p.Plan(items, func(bucket int) int { return 2 })
	want := [][]int{{0, 1}, {2}, {3}, {4, 5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("plan = %v, want %v", got, want)
	}
	// Uncapped: the leading run coalesces fully.
	got = p.Plan(items, nil)
	want = [][]int{{0, 1, 2}, {3}, {4, 5}, {6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("uncapped plan = %v, want %v", got, want)
	}
	// Caps below 1 behave as 1.
	got = p.Plan(items[:2], func(int) int { return 0 })
	if !reflect.DeepEqual(got, [][]int{{0}, {1}}) {
		t.Fatalf("cap-0 plan = %v", got)
	}
	if got := p.Plan(nil, nil); got != nil {
		t.Fatalf("empty plan = %v", got)
	}
}

func TestPlanOverflowIsOwnBucket(t *testing.T) {
	p := NewPolicy([]int{512})
	items := []Item{{1395, "a"}, {1395, "a"}, {1400, "a"}}
	got := p.Plan(items, nil)
	// Two 1395s share their exact-size bucket; 1400 differs.
	want := [][]int{{0, 1}, {2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overflow plan = %v, want %v", got, want)
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter()
	m.ObserveJob(512, 484)
	m.ObserveJob(512, 242)
	m.ObserveBatch(512, true)
	m.ObserveJob(1024, 881)
	m.ObserveBatch(1024, true)
	m.ObserveBatch(1024, false)

	rows := m.Snapshot()
	if len(rows) != 2 || rows[0].Bucket != 512 || rows[1].Bucket != 1024 {
		t.Fatalf("rows = %+v", rows)
	}
	r := rows[0]
	if r.Requests != 2 || r.Batches != 1 || r.ActualTokens != 726 || r.PaddedTokens != 1024 {
		t.Errorf("512 row = %+v", r)
	}
	wantWaste := 100 * float64(1024-726) / 1024
	if got := r.WastePct(); got != wantWaste {
		t.Errorf("waste = %v, want %v", got, wantWaste)
	}
	if got := r.MeanBatchSize(); got != 2 {
		t.Errorf("mean batch = %v, want 2", got)
	}
	r = rows[1]
	if r.CompileMisses != 1 || r.CompileHits != 1 {
		t.Errorf("1024 compile counters = %+v", r)
	}
	reqs, actual, padded := m.Totals()
	if reqs != 3 || actual != 726+881 || padded != 1024+1024 {
		t.Errorf("totals = %d %d %d", reqs, actual, padded)
	}
	if (BucketStats{}).WastePct() != 0 || (BucketStats{}).MeanBatchSize() != 0 {
		t.Error("zero-row derived stats must be 0")
	}
}
