// Package seq defines biomolecular sequence types and the statistical tools
// the benchmark suite uses to characterize them: alphabets for protein, DNA
// and RNA chains, Shannon-entropy and repeat-run measures of sequence
// complexity (the property that makes the paper's "promo" sample stress the
// MSA stage), and deterministic synthetic sequence generators.
package seq

import (
	"fmt"
	"math"
	"strings"

	"afsysbench/internal/rng"
)

// MoleculeType identifies the chemistry of a chain. AlphaFold3 accepts
// protein, DNA and RNA chains (plus ligands/ions, which do not participate
// in the MSA phase and are modeled only as atom counts here).
type MoleculeType int

const (
	Protein MoleculeType = iota
	DNA
	RNA
	Ligand
)

// String returns the lowercase name used in AF3 input JSON.
func (m MoleculeType) String() string {
	switch m {
	case Protein:
		return "protein"
	case DNA:
		return "dna"
	case RNA:
		return "rna"
	case Ligand:
		return "ligand"
	default:
		return fmt.Sprintf("MoleculeType(%d)", int(m))
	}
}

// ParseMoleculeType converts an AF3 JSON chain-type string.
func ParseMoleculeType(s string) (MoleculeType, error) {
	switch strings.ToLower(s) {
	case "protein":
		return Protein, nil
	case "dna":
		return DNA, nil
	case "rna":
		return RNA, nil
	case "ligand":
		return Ligand, nil
	default:
		return 0, fmt.Errorf("seq: unknown molecule type %q", s)
	}
}

// SearchesMSA reports whether chains of this type go through the MSA phase.
// DNA chains are excluded from MSA in AF3 (Observation 2 in the paper);
// ligands never align.
func (m MoleculeType) SearchesMSA() bool {
	return m == Protein || m == RNA
}

// Alphabets. Residues are stored as bytes indexing into these strings.
const (
	ProteinAlphabet = "ACDEFGHIKLMNPQRSTVWY"
	DNAAlphabet     = "ACGT"
	RNAAlphabet     = "ACGU"
)

// Alphabet returns the residue alphabet for the molecule type. Ligands have
// no sequence alphabet and return the empty string.
func (m MoleculeType) Alphabet() string {
	switch m {
	case Protein:
		return ProteinAlphabet
	case DNA:
		return DNAAlphabet
	case RNA:
		return RNAAlphabet
	default:
		return ""
	}
}

// Sequence is a single chain: an identifier, its chemistry, and residues
// encoded as alphabet indices (not ASCII). Use Letters for display.
type Sequence struct {
	ID       string
	Type     MoleculeType
	Residues []byte
}

// Len returns the residue count.
func (s *Sequence) Len() int { return len(s.Residues) }

// Letters renders the residues in one-letter code.
func (s *Sequence) Letters() string {
	alpha := s.Type.Alphabet()
	var b strings.Builder
	b.Grow(len(s.Residues))
	for _, r := range s.Residues {
		if int(r) >= len(alpha) {
			b.WriteByte('X')
			continue
		}
		b.WriteByte(alpha[r])
	}
	return b.String()
}

// FromLetters builds a Sequence from one-letter code, mapping unknown
// letters to residue 0. It returns an error if the alphabet is empty.
func FromLetters(id string, t MoleculeType, letters string) (*Sequence, error) {
	alpha := t.Alphabet()
	if alpha == "" {
		return nil, fmt.Errorf("seq: molecule type %v has no alphabet", t)
	}
	res := make([]byte, len(letters))
	for i := 0; i < len(letters); i++ {
		idx := strings.IndexByte(alpha, letters[i])
		if idx < 0 {
			idx = 0
		}
		res[i] = byte(idx)
	}
	return &Sequence{ID: id, Type: t, Residues: res}, nil
}

// Validate checks residue encoding against the alphabet.
func (s *Sequence) Validate() error {
	alpha := s.Type.Alphabet()
	if alpha == "" {
		if len(s.Residues) != 0 {
			return fmt.Errorf("seq %s: %v chains carry no residues", s.ID, s.Type)
		}
		return nil
	}
	for i, r := range s.Residues {
		if int(r) >= len(alpha) {
			return fmt.Errorf("seq %s: residue %d code %d exceeds alphabet size %d", s.ID, i, r, len(alpha))
		}
	}
	return nil
}

// ShannonEntropy returns the per-residue Shannon entropy in bits of the
// sequence's composition. Low entropy flags low-complexity sequence (for the
// 20-letter protein alphabet, random sequence approaches log2(20) ≈ 4.32
// bits; poly-Q runs push it toward 0).
func (s *Sequence) ShannonEntropy() float64 {
	if len(s.Residues) == 0 {
		return 0
	}
	counts := make(map[byte]int)
	for _, r := range s.Residues {
		counts[r]++
	}
	n := float64(len(s.Residues))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// LongestRun returns the length of the longest run of a single residue —
// the direct detector for poly-Q style repeats.
func (s *Sequence) LongestRun() int {
	best, cur := 0, 0
	for i, r := range s.Residues {
		if i > 0 && r == s.Residues[i-1] {
			cur++
		} else {
			cur = 1
		}
		if cur > best {
			best = cur
		}
	}
	return best
}

// LowComplexityFraction returns the fraction of residues covered by windows
// whose local entropy falls below threshold bits, using the given window
// size. It is the filter criterion the MSA stage applies (SEG-like).
func (s *Sequence) LowComplexityFraction(window int, threshold float64) float64 {
	n := len(s.Residues)
	if n == 0 || window <= 0 {
		return 0
	}
	if window > n {
		window = n
	}
	covered := make([]bool, n)
	counts := make([]int, 32)
	// Sliding window with incremental counts.
	distinctEntropy := func() float64 {
		var h float64
		w := float64(window)
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / w
				h -= p * math.Log2(p)
			}
		}
		return h
	}
	for i := 0; i < window; i++ {
		counts[s.Residues[i]]++
	}
	for start := 0; ; start++ {
		if distinctEntropy() < threshold {
			for i := start; i < start+window; i++ {
				covered[i] = true
			}
		}
		if start+window >= n {
			break
		}
		counts[s.Residues[start]]--
		counts[s.Residues[start+window]]++
	}
	total := 0
	for _, c := range covered {
		if c {
			total++
		}
	}
	return float64(total) / float64(n)
}

// Complexity summarizes the input-sensitivity features the paper identifies:
// entropy, repeat runs, and low-complexity coverage.
type Complexity struct {
	Entropy        float64 // bits per residue
	LongestRun     int
	LowComplexFrac float64
}

// Complexity computes the summary with the MSA filter's default window (12)
// and threshold (2.2 bits), values chosen so that poly-Q stretches are
// flagged while diverse globular sequence is not.
func (s *Sequence) Complexity() Complexity {
	return Complexity{
		Entropy:        s.ShannonEntropy(),
		LongestRun:     s.LongestRun(),
		LowComplexFrac: s.LowComplexityFraction(12, 2.2),
	}
}

// Generator produces deterministic synthetic sequences.
type Generator struct {
	rng *rng.Source
}

// NewGenerator returns a Generator drawing from src.
func NewGenerator(src *rng.Source) *Generator { return &Generator{rng: src} }

// Random returns a uniformly random sequence of the given type and length.
func (g *Generator) Random(id string, t MoleculeType, length int) *Sequence {
	alpha := t.Alphabet()
	res := make([]byte, length)
	for i := range res {
		res[i] = byte(g.rng.Intn(len(alpha)))
	}
	return &Sequence{ID: id, Type: t, Residues: res}
}

// WithRepeat returns a random sequence of the given length in which a single
// residue repeat run (e.g. poly-Q: residue 'Q') of repeatLen is planted at a
// random offset, mimicking the promo sample's chain A.
func (g *Generator) WithRepeat(id string, t MoleculeType, length, repeatLen int, residue byte) *Sequence {
	s := g.Random(id, t, length)
	if repeatLen > length {
		repeatLen = length
	}
	if repeatLen <= 0 {
		return s
	}
	start := 0
	if length > repeatLen {
		start = g.rng.Intn(length - repeatLen)
	}
	for i := start; i < start+repeatLen; i++ {
		s.Residues[i] = residue
	}
	return s
}

// Mutate returns a copy of src with approximately rate fraction of residues
// substituted uniformly at random — used to plant homologs in synthetic
// databases so profile searches find genuine relatives.
func (g *Generator) Mutate(src *Sequence, id string, rate float64) *Sequence {
	alpha := src.Type.Alphabet()
	res := make([]byte, len(src.Residues))
	copy(res, src.Residues)
	for i := range res {
		if g.rng.Float64() < rate {
			res[i] = byte(g.rng.Intn(len(alpha)))
		}
	}
	return &Sequence{ID: id, Type: src.Type, Residues: res}
}

// Fragment returns a random contiguous fragment of src of the given length
// (clamped to the source length), as database decoys often share local
// segments with queries.
func (g *Generator) Fragment(src *Sequence, id string, length int) *Sequence {
	if length >= len(src.Residues) {
		cp := make([]byte, len(src.Residues))
		copy(cp, src.Residues)
		return &Sequence{ID: id, Type: src.Type, Residues: cp}
	}
	start := g.rng.Intn(len(src.Residues) - length + 1)
	cp := make([]byte, length)
	copy(cp, src.Residues[start:start+length])
	return &Sequence{ID: id, Type: src.Type, Residues: cp}
}

// QIndex is the protein alphabet index of glutamine (Q), the poly-Q residue.
var QIndex = byte(strings.IndexByte(ProteinAlphabet, 'Q'))
