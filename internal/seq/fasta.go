package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteFASTA writes sequences in FASTA format, wrapping lines at width 60.
func WriteFASTA(w io.Writer, seqs []*Sequence) error {
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Type); err != nil {
			return err
		}
		letters := s.Letters()
		for len(letters) > 0 {
			n := 60
			if n > len(letters) {
				n = len(letters)
			}
			if _, err := bw.WriteString(letters[:n]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
			letters = letters[n:]
		}
	}
	return bw.Flush()
}

// ReadFASTA parses sequences of the given molecule type from FASTA input.
// The type is required because one-letter codes are ambiguous between
// chemistries (e.g. "ACG" is valid protein, DNA and RNA).
func ReadFASTA(r io.Reader, t MoleculeType) ([]*Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []*Sequence
	var id string
	var body strings.Builder
	flush := func() error {
		if id == "" {
			return nil
		}
		s, err := FromLetters(id, t, body.String())
		if err != nil {
			return err
		}
		out = append(out, s)
		body.Reset()
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("seq: empty FASTA header")
			}
			id = strings.Fields(header)[0]
			continue
		}
		if id == "" {
			return nil, fmt.Errorf("seq: FASTA body before first header")
		}
		body.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}
