package seq

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"afsysbench/internal/rng"
)

func TestMoleculeTypeRoundTrip(t *testing.T) {
	for _, m := range []MoleculeType{Protein, DNA, RNA, Ligand} {
		got, err := ParseMoleculeType(m.String())
		if err != nil {
			t.Fatalf("ParseMoleculeType(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("round trip %v -> %v", m, got)
		}
	}
	if _, err := ParseMoleculeType("lipid"); err == nil {
		t.Error("ParseMoleculeType accepted unknown type")
	}
}

func TestSearchesMSA(t *testing.T) {
	if !Protein.SearchesMSA() || !RNA.SearchesMSA() {
		t.Error("protein and RNA must go through MSA")
	}
	if DNA.SearchesMSA() || Ligand.SearchesMSA() {
		t.Error("DNA and ligand chains are excluded from MSA (paper Obs. 2)")
	}
}

func TestAlphabets(t *testing.T) {
	if len(ProteinAlphabet) != 20 {
		t.Errorf("protein alphabet size = %d, want 20", len(ProteinAlphabet))
	}
	if DNAAlphabet != "ACGT" || RNAAlphabet != "ACGU" {
		t.Error("nucleotide alphabets wrong")
	}
	if Ligand.Alphabet() != "" {
		t.Error("ligand must have empty alphabet")
	}
}

func TestLettersRoundTrip(t *testing.T) {
	s, err := FromLetters("x", Protein, "ACDEFGHIKLMNPQRSTVWY")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Letters(); got != ProteinAlphabet {
		t.Errorf("Letters = %q, want full alphabet", got)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromLettersUnknownMapsToZero(t *testing.T) {
	s, err := FromLetters("x", DNA, "AXG")
	if err != nil {
		t.Fatal(err)
	}
	if s.Residues[1] != 0 {
		t.Errorf("unknown letter mapped to %d, want 0", s.Residues[1])
	}
}

func TestFromLettersLigandErrors(t *testing.T) {
	if _, err := FromLetters("x", Ligand, "A"); err == nil {
		t.Error("FromLetters on ligand should error")
	}
}

func TestValidateCatchesBadResidue(t *testing.T) {
	s := &Sequence{ID: "bad", Type: DNA, Residues: []byte{0, 9}}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted residue code beyond alphabet")
	}
}

func TestShannonEntropyExtremes(t *testing.T) {
	mono := &Sequence{Type: Protein, Residues: bytes.Repeat([]byte{QIndex}, 100)}
	if h := mono.ShannonEntropy(); h != 0 {
		t.Errorf("mono-residue entropy = %v, want 0", h)
	}
	// Uniform over 20 letters.
	var res []byte
	for i := 0; i < 20; i++ {
		res = append(res, bytes.Repeat([]byte{byte(i)}, 5)...)
	}
	uniform := &Sequence{Type: Protein, Residues: res}
	if h := uniform.ShannonEntropy(); math.Abs(h-math.Log2(20)) > 1e-9 {
		t.Errorf("uniform entropy = %v, want log2(20)=%v", h, math.Log2(20))
	}
	empty := &Sequence{Type: Protein}
	if empty.ShannonEntropy() != 0 {
		t.Error("empty sequence entropy should be 0")
	}
}

func TestLongestRun(t *testing.T) {
	cases := []struct {
		letters string
		want    int
	}{
		{"", 0},
		{"A", 1},
		{"ACGT", 1},
		{"AACGG", 2},
		{"AQQQQC", 4},
		{"QQQQQQ", 6},
	}
	for _, c := range cases {
		s, _ := FromLetters("x", Protein, c.letters)
		if got := s.LongestRun(); got != c.want {
			t.Errorf("LongestRun(%q) = %d, want %d", c.letters, got, c.want)
		}
	}
}

func TestLowComplexityDetectsPolyQ(t *testing.T) {
	g := NewGenerator(rng.New(1))
	normal := g.Random("n", Protein, 400)
	polyQ := g.WithRepeat("p", Protein, 400, 120, QIndex)
	fn := normal.LowComplexityFraction(12, 2.2)
	fp := polyQ.LowComplexityFraction(12, 2.2)
	if fp <= fn {
		t.Errorf("poly-Q low-complexity fraction %v not above random %v", fp, fn)
	}
	if fp < 0.2 {
		t.Errorf("poly-Q with 30%% repeat flagged only %v", fp)
	}
	if fn > 0.05 {
		t.Errorf("random sequence flagged %v low complexity, want ~0", fn)
	}
}

func TestComplexitySummary(t *testing.T) {
	g := NewGenerator(rng.New(2))
	s := g.WithRepeat("p", Protein, 300, 60, QIndex)
	c := s.Complexity()
	if c.LongestRun < 60 {
		t.Errorf("LongestRun = %d, want >= 60", c.LongestRun)
	}
	if c.Entropy <= 0 || c.Entropy > math.Log2(20) {
		t.Errorf("entropy %v out of range", c.Entropy)
	}
	if c.LowComplexFrac <= 0 {
		t.Error("expected nonzero low-complexity fraction")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(rng.New(5)).Random("a", Protein, 200)
	b := NewGenerator(rng.New(5)).Random("a", Protein, 200)
	if !bytes.Equal(a.Residues, b.Residues) {
		t.Error("same seed produced different sequences")
	}
}

func TestMutateRate(t *testing.T) {
	g := NewGenerator(rng.New(7))
	src := g.Random("s", Protein, 2000)
	mut := g.Mutate(src, "m", 0.3)
	if len(mut.Residues) != len(src.Residues) {
		t.Fatal("mutation changed length")
	}
	diff := 0
	for i := range src.Residues {
		if src.Residues[i] != mut.Residues[i] {
			diff++
		}
	}
	// Expected differing fraction is rate*(1-1/|A|) ≈ 0.285.
	frac := float64(diff) / float64(len(src.Residues))
	if frac < 0.2 || frac > 0.37 {
		t.Errorf("mutated fraction = %v, want ~0.285", frac)
	}
	// Mutation must not alias the source storage.
	mut.Residues[0] = (mut.Residues[0] + 1) % 20
	if &src.Residues[0] == &mut.Residues[0] {
		t.Error("Mutate aliased source residues")
	}
}

func TestFragmentBounds(t *testing.T) {
	g := NewGenerator(rng.New(9))
	src := g.Random("s", RNA, 100)
	for _, l := range []int{1, 10, 99, 100, 150} {
		f := g.Fragment(src, "f", l)
		want := l
		if want > 100 {
			want = 100
		}
		if f.Len() != want {
			t.Errorf("Fragment len %d, want %d", f.Len(), want)
		}
		if f.Type != RNA {
			t.Error("fragment lost molecule type")
		}
	}
}

func TestFASTARoundTrip(t *testing.T) {
	g := NewGenerator(rng.New(11))
	in := []*Sequence{
		g.Random("chainA", Protein, 137),
		g.Random("chainB", Protein, 61),
		g.Random("chainC", Protein, 1),
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFASTA(&buf, Protein)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || !bytes.Equal(out[i].Residues, in[i].Residues) {
			t.Errorf("sequence %d mismatched after round trip", i)
		}
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n"), DNA); err == nil {
		t.Error("body before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">\nACGT\n"), DNA); err == nil {
		t.Error("empty header accepted")
	}
}

func TestFASTAEmptyInput(t *testing.T) {
	out, err := ReadFASTA(strings.NewReader(""), DNA)
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: got %d seqs, err %v", len(out), err)
	}
}

func TestQuickFASTARoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		g := NewGenerator(rng.New(seed))
		length := int(n)%500 + 1
		in := []*Sequence{g.Random("q", Protein, length)}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, in); err != nil {
			return false
		}
		out, err := ReadFASTA(&buf, Protein)
		if err != nil || len(out) != 1 {
			return false
		}
		return bytes.Equal(out[0].Residues, in[0].Residues)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEntropyBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		g := NewGenerator(rng.New(seed))
		s := g.Random("q", Protein, int(n)%1000+1)
		h := s.ShannonEntropy()
		return h >= 0 && h <= math.Log2(20)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFASTARobustToGarbage(t *testing.T) {
	// Arbitrary byte soup must never panic: either parse or error.
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(200)
		junk := make([]byte, n)
		for i := range junk {
			junk[i] = byte(r.Intn(256))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("ReadFASTA panicked on %q: %v", junk, p)
				}
			}()
			seqs, err := ReadFASTA(bytes.NewReader(junk), Protein)
			if err == nil {
				for _, s := range seqs {
					if verr := s.Validate(); verr != nil {
						t.Fatalf("parsed invalid sequence from garbage: %v", verr)
					}
				}
			}
		}()
	}
}
