module afsysbench

go 1.22
