// Package afsysbench is AFSysBench-Go: a full-system reproduction of
// "AlphaFold3 Workload Characterization: A Comprehensive Analysis of
// Bottlenecks and Performance Scaling" (IISWC 2025).
//
// The package re-exports the suite's public surface. The pipeline itself —
// a jackhmmer/nhmmer-class profile-HMM search engine, the Pairformer and
// diffusion inference modules, a mini XLA-style graph compiler, and
// cycle-accurate-in-shape models of the paper's two platforms (Intel Xeon
// + H100 server, AMD Ryzen + RTX 4080 desktop) — lives in internal
// subpackages; everything a downstream user needs is aliased here.
//
// Quickstart:
//
//	suite, err := afsysbench.NewSuite()
//	in, _ := afsysbench.SampleByName("2PV7")
//	res, err := suite.RunPipeline(in, afsysbench.Server(), afsysbench.PipelineOptions{Threads: 8})
//	fmt.Println(res.MSASeconds, res.Inference.Total())
//
// Every table and figure of the paper has a data producer on Suite
// (Figure3, Table6, ...) and a renderer in the report aliases below; the
// afsysbench command wraps them all.
package afsysbench

import (
	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
	"afsysbench/internal/simgpu"
)

// Suite is a configured benchmark-suite instance; see NewSuite.
type Suite = core.Suite

// NewSuite builds the standard suite: deterministic synthetic reference
// databases covering the Table II samples, and the AF3-scale inference
// model.
func NewSuite() (*Suite, error) { return core.NewSuite() }

// Input is one biomolecular assembly in AF3 input terms.
type Input = inputs.Input

// Chain is one molecular chain of an Input.
type Chain = inputs.Chain

// Samples returns the five Table II benchmark inputs in paper order.
func Samples() []*Input { return inputs.Samples() }

// SampleByName returns a Table II sample ("2PV7", "7RCE", "1YY9", "promo",
// "6QNR").
func SampleByName(name string) (*Input, error) { return inputs.ByName(name) }

// RNASweep returns the Figure 2 inputs (RNA lengths 621–1335).
func RNASweep() []*Input { return inputs.RNASweep() }

// Machine is one evaluation platform (Table I).
type Machine = platform.Machine

// Server returns the Intel Xeon Gold 5416S + H100 platform.
func Server() Machine { return platform.Server() }

// ServerWithCXL returns the server with the 256 GiB CXL expander.
func ServerWithCXL() Machine { return platform.ServerWithCXL() }

// Desktop returns the AMD Ryzen 7900X + RTX 4080 platform.
func Desktop() Machine { return platform.Desktop() }

// DesktopUpgraded returns the desktop with the 128 GiB DRAM upgrade.
func DesktopUpgraded() Machine { return platform.DesktopUpgraded() }

// Platforms returns every defined machine.
func Platforms() []Machine { return platform.All() }

// PlatformByName looks a machine up by name.
func PlatformByName(name string) (Machine, error) { return platform.ByName(name) }

// PipelineOptions configure one end-to-end run.
type PipelineOptions = core.PipelineOptions

// PipelineResult is the outcome of one end-to-end run.
type PipelineResult = core.PipelineResult

// ErrProjectedOOM is returned when the Section VI estimator predicts the
// input cannot fit the machine.
type ErrProjectedOOM = core.ErrProjectedOOM

// Resilience layer: deadlines, fault injection, and the degradation ladder
// for RunPipelineCtx. See ParseFaults for the fault-spec grammar.
type (
	// StageBudget caps modeled per-stage time (PipelineOptions.Budget).
	StageBudget = resilience.StageBudget
	// RetryPolicy is the capped-exponential transient-fault retry policy.
	RetryPolicy = resilience.RetryPolicy
	// Faults is a parsed fault-injection specification.
	Faults = resilience.Faults
	// ResilienceReport is a run's retry/degradation accounting
	// (PipelineResult.Resilience).
	ResilienceReport = resilience.Report
	// ResilienceEvent is one recorded retry or degradation action.
	ResilienceEvent = resilience.Event
	// ErrStageTimeout reports a stage that missed its budget or deadline.
	ErrStageTimeout = resilience.ErrStageTimeout
	// ErrDBUnavailable reports a database the retry policy could not reach.
	ErrDBUnavailable = resilience.ErrDBUnavailable
)

// ParseFaults parses the -faults flag grammar (transient:<db>[:count],
// permanent:<db>, stall:<seconds>, memspike:<gib>[:after]; "*" targets
// every database).
func ParseFaults(spec string) (Faults, error) { return resilience.ParseFaults(spec) }

// PhaseBreakdown is the Figure 8 inference decomposition.
type PhaseBreakdown = simgpu.PhaseBreakdown

// MemoryEstimate is the static pre-check result (Section VI).
type MemoryEstimate = memest.Estimate

// MemoryCheck projects the peak MSA-stage memory of an input on a machine
// at a thread count and classifies it (OK / NEEDS-EXPANSION / OOM).
func MemoryCheck(in *Input, mach Machine, threads int) MemoryEstimate {
	return memest.Check(in, mach, threads)
}

// MaxSafeRNALength returns the longest RNA chain the machine can process.
func MaxSafeRNALength(mach Machine) int { return memest.MaxSafeRNALength(mach) }

// Experiment row types, one per paper artifact.
type (
	// MemRow is one Figure 2 point.
	MemRow = core.MemRow
	// PhaseRow is one Figure 3 bar.
	PhaseRow = core.PhaseRow
	// ScalingRow is one Figure 4/5 point.
	ScalingRow = core.ScalingRow
	// InferenceRow is one Figure 6 point.
	InferenceRow = core.InferenceRow
	// ShareRow is one Figure 7 bar.
	ShareRow = core.ShareRow
	// BreakdownRow is one Figure 8 bar.
	BreakdownRow = core.BreakdownRow
	// LayerRow is one Figure 9 slice.
	LayerRow = core.LayerRow
	// Table3Cell is one Table III cell.
	Table3Cell = core.Table3Cell
	// Table4Row is one Table IV row.
	Table4Row = core.Table4Row
	// Table5Row is one Table V row.
	Table5Row = core.Table5Row
	// Table6Row is one Table VI row.
	Table6Row = core.Table6Row
)

// Figure2 produces the RNA memory sweep (platform-independent).
func Figure2() []MemRow { return core.Figure2() }

// SampleNames returns the Table II names in paper order.
func SampleNames() []string { return core.SampleNames() }

// TwoPlatforms returns the paper's Server and Desktop machines.
func TwoPlatforms() []Machine { return core.TwoPlatforms() }

// MachineFor applies the paper's operational substitution (the 6QNR DRAM
// upgrade) when a sample cannot fit the stock machine.
func MachineFor(in *Input, mach Machine) Machine { return core.MachineFor(in, mach) }

// Thread sweeps used by the paper.
var (
	// MSAThreadSweep covers Figures 3-5 (1, 2, 4, 6, 8).
	MSAThreadSweep = core.MSAThreadSweep
	// InferenceThreadSweep covers Figure 6 (1, 2, 4, 6).
	InferenceThreadSweep = core.InferenceThreadSweep
)
