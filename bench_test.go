// Benchmark harness: one benchmark per table and figure of the paper plus
// real-kernel microbenchmarks and the DESIGN.md ablations. The per-artifact
// benchmarks regenerate the same rows/series the paper reports (simulated
// platform seconds); the kernel benchmarks measure the real Go
// implementations' wall time so regressions in the substrates are visible.
package afsysbench

import (
	"fmt"
	"sync"
	"testing"

	"afsysbench/internal/core"
	"afsysbench/internal/diffusion"
	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/metering"
	"afsysbench/internal/msa"
	"afsysbench/internal/pairformer"
	"afsysbench/internal/platform"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
	"afsysbench/internal/simhw"
	"afsysbench/internal/simio"
	"afsysbench/internal/xla"
)

var (
	benchOnce  sync.Once
	benchSuite *core.Suite
	benchErr   error
)

func suite(b *testing.B) *core.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite, benchErr = core.NewSuite()
		if benchErr == nil {
			benchSuite.Runs = 1
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

// ---- Tables I and II -------------------------------------------------

// BenchmarkTable1Platforms regenerates the Table I platform definitions.
func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(platform.All()) != 4 {
			b.Fatal("platform set wrong")
		}
	}
}

// BenchmarkTable2Samples regenerates the Table II sample set.
func BenchmarkTable2Samples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		samples := inputs.Samples()
		if len(samples) != 5 || samples[4].TotalResidues() != 1395 {
			b.Fatal("sample set wrong")
		}
	}
}

// ---- Figures 2-9 ------------------------------------------------------

// BenchmarkFigure2MemoryCurve regenerates the RNA-length memory sweep.
func BenchmarkFigure2MemoryCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.Figure2()
		if len(rows) != 4 {
			b.Fatal("figure 2 rows wrong")
		}
	}
	rows := core.Figure2()
	b.ReportMetric(rows[1].PeakGiB/rows[0].PeakGiB, "memGrowth_621to935")
}

// BenchmarkFigure3EndToEnd regenerates the full stacked-bar matrix:
// five samples x two platforms x five thread counts.
func BenchmarkFigure3EndToEnd(b *testing.B) {
	s := suite(b)
	var rows []core.PhaseRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure3(core.SampleNames(), core.TwoPlatforms(), core.MSAThreadSweep)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Shape metric: MSA share of the end-to-end time at 8 threads, 6QNR
	// on the server (the paper's 94% extreme).
	for _, r := range rows {
		if r.Sample == "6QNR" && r.Machine == "Server" && r.Threads == 8 {
			b.ReportMetric(100*r.MSASeconds/r.Total(), "msaShare6QNRpct")
		}
	}
}

// BenchmarkFigure4MSAScaling regenerates the per-sample MSA scaling curves.
func BenchmarkFigure4MSAScaling(b *testing.B) {
	s := suite(b)
	names := []string{"2PV7", "7RCE", "1YY9", "promo"}
	var rows []core.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure4(names, core.TwoPlatforms())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Sample == "2PV7" && r.Machine == "Desktop" && r.Threads == 2 {
			b.ReportMetric(r.Speedup, "speedup2T")
		}
	}
}

// BenchmarkFigure5SixQNRScaling regenerates the 6QNR deep-dive.
func BenchmarkFigure5SixQNRScaling(b *testing.B) {
	s := suite(b)
	var rows []core.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	var best float64
	for _, r := range rows {
		if r.Speedup > best {
			best = r.Speedup
		}
	}
	b.ReportMetric(best, "peakSpeedup")
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup8T")
}

// BenchmarkFigure6InferenceThreads regenerates inference time vs threads.
func BenchmarkFigure6InferenceThreads(b *testing.B) {
	s := suite(b)
	names := []string{"2PV7", "1YY9", "promo"}
	var rows []core.InferenceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure6(names, core.TwoPlatforms())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Seconds/rows[len(rows)-len(core.InferenceThreadSweep)].Seconds, "degradation1to6T")
}

// BenchmarkFigure7PhaseShares regenerates the optimal-thread phase split.
func BenchmarkFigure7PhaseShares(b *testing.B) {
	s := suite(b)
	var rows []core.ShareRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure7(core.SampleNames(), core.TwoPlatforms())
		if err != nil {
			b.Fatal(err)
		}
	}
	var minShare float64 = 100
	for _, r := range rows {
		if r.MSAPct < minShare {
			minShare = r.MSAPct
		}
	}
	b.ReportMetric(minShare, "minMSASharePct")
}

// BenchmarkFigure8InferenceBreakdown regenerates the init/compile/compute
// decomposition.
func BenchmarkFigure8InferenceBreakdown(b *testing.B) {
	s := suite(b)
	var rows []core.BreakdownRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure8([]string{"2PV7", "1YY9", "promo"}, core.TwoPlatforms())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Sample == "2PV7" && r.Machine == "Server" {
			b.ReportMetric(r.OverheadPct(), "serverOverheadPct")
		}
		if r.Sample == "2PV7" && r.Machine == "Desktop" {
			b.ReportMetric(r.Compute, "desktopComputeSec")
		}
	}
}

// BenchmarkFigure9LayerBreakdown regenerates the Pairformer/Diffusion pie.
func BenchmarkFigure9LayerBreakdown(b *testing.B) {
	s := suite(b)
	var rows []core.LayerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Sample == "2PV7" && r.Layer == "global attention" {
			b.ReportMetric(r.SharePct, "globalAttnSharePct")
		}
	}
}

// ---- Tables III-VI ----------------------------------------------------

// BenchmarkTable3CPUMetrics regenerates the CPU counter comparison.
func BenchmarkTable3CPUMetrics(b *testing.B) {
	s := suite(b)
	var cells []core.Table3Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = s.Table3([]string{"2PV7", "promo"})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		if c.Sample == "2PV7" && c.Machine == "Server" && c.Threads == 1 {
			b.ReportMetric(c.IPC, "intelIPC1T")
			b.ReportMetric(c.LLCPct, "intelLLCMissPct1T")
		}
		if c.Sample == "2PV7" && c.Machine == "Desktop" && c.Threads == 6 {
			b.ReportMetric(c.LLCPct, "amdLLCMissPct6T")
			b.ReportMetric(c.DTLBPct, "amdDTLBPct6T")
		}
	}
}

// BenchmarkTable4FunctionProfile regenerates the function-level shares.
func BenchmarkTable4FunctionProfile(b *testing.B) {
	s := suite(b)
	var rows []core.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table4([]string{"2PV7", "promo"})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Metric == "cycles" && r.Function == "calc_band_9" {
			b.ReportMetric(r.SharePct["2PV7/1T"], "calcBand9CyclesPct")
		}
		if r.Metric == "cache-misses" && r.Function == "copy_to_iter" {
			b.ReportMetric(r.SharePct["2PV7/1T"], "copyToIterMissPct1T")
			b.ReportMetric(r.SharePct["2PV7/4T"], "copyToIterMissPct4T")
		}
	}
}

// BenchmarkTable5InferenceBottlenecks regenerates the host-side profile.
func BenchmarkTable5InferenceBottlenecks(b *testing.B) {
	s := suite(b)
	var rows []core.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table5([]string{"2PV7", "promo"})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Symbol == "std::vector::_M_fill_insert" && r.Sample == "2PV7" {
			b.ReportMetric(r.OverheadPct, "fillInsertFaultPct")
		}
	}
}

// BenchmarkTable6LayerTimes regenerates the layer-wise execution table.
func BenchmarkTable6LayerTimes(b *testing.B) {
	s := suite(b)
	var rows []core.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	var pf, df float64
	for _, r := range rows {
		switch r.Label {
		case "Pairformer":
			pf = r.Per2PV7Seconds
		case "Diffusion":
			df = r.Per2PV7Seconds
		}
	}
	b.ReportMetric(df/pf, "diffusionOverPairformer")
}

// ---- Real-kernel microbenchmarks (wall time of the Go substrates) -----

func benchQueryTarget(n, m int) (*hmmer.Profile, *seq.Sequence) {
	g := seq.NewGenerator(rng.New(42))
	q := g.Random("q", seq.Protein, n)
	t := g.Mutate(q, "t", 0.3)
	t.Residues = t.Residues[:m]
	p, err := hmmer.BuildFromQuery(q)
	if err != nil {
		panic(err)
	}
	return p, t
}

// BenchmarkKernelBandedViterbi measures the calc_band DP kernels.
func BenchmarkKernelBandedViterbi(b *testing.B) {
	p, t := benchQueryTarget(484, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmmer.BandedViterbi(p, t, 0, hmmer.BandHalfWidth, metering.Nop{})
	}
	res := hmmer.BandedViterbi(p, t, 0, hmmer.BandHalfWidth, metering.Nop{})
	b.ReportMetric(float64(res.Cells), "cells/op")
}

// BenchmarkKernelFullViterbi measures the unbanded reference DP.
func BenchmarkKernelFullViterbi(b *testing.B) {
	p, t := benchQueryTarget(484, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmmer.FullViterbi(p, t, metering.Nop{})
	}
}

// BenchmarkKernelMSVFilter measures the ungapped prefilter.
func BenchmarkKernelMSVFilter(b *testing.B) {
	p, t := benchQueryTarget(484, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmmer.MSVFilter(p, t, metering.Nop{})
	}
}

// BenchmarkKernelForward measures banded Forward scoring.
func BenchmarkKernelForward(b *testing.B) {
	p, t := benchQueryTarget(484, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmmer.Forward(p, t, 0, hmmer.BandHalfWidth, metering.Nop{})
	}
}

// BenchmarkKernelDBScan measures a full single-threaded database pass.
func BenchmarkKernelDBScan(b *testing.B) {
	g := seq.NewGenerator(rng.New(7))
	query := g.Random("q", seq.Protein, 242)
	db, err := seqdb.Generate(seqdb.Spec{
		Name: "bench", Type: seq.Protein, NumSeqs: 100, MeanLen: 200,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 4, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := hmmer.SearchProtein(query, func() hmmer.RecordSource {
			return &hmmer.SliceSource{Seqs: db.Seqs}
		}, db.TotalResidues(), hmmer.SearchOptions{Iterations: 1}, metering.Nop{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelPairformerBlock measures one real Pairformer block at a
// reduced size (the modules run real math; costs extrapolate analytically).
func BenchmarkKernelPairformerBlock(b *testing.B) {
	cfg := pairformer.Config{
		Blocks: 1, PairDim: 16, SingleDim: 32, Heads: 2, HeadDim: 8,
		TriHidden: 16, TransMult: 2,
	}
	src := rng.New(3)
	blk, err := pairformer.NewBlock(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	s := pairformer.RandomState(cfg, 48, src.Split(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blk.Apply(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelDiffusionStep measures one real denoiser evaluation.
func BenchmarkKernelDiffusionStep(b *testing.B) {
	cfg := diffusion.Config{
		Samples: 1, Steps: 1, TokenDim: 32, AtomDim: 16, AtomsPerToken: 4,
		AtomWindow: 12, GlobalLayers: 2, LocalEncLayers: 2, LocalDecLayers: 2, Heads: 2,
	}
	src := rng.New(5)
	d, err := diffusion.NewDenoiser(cfg, src)
	if err != nil {
		b.Fatal(err)
	}
	coords, err := d.Sample(32, src.Split(1), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.DenoiseStep(coords, 0.5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelXLACompile measures the real graph passes at AF3 scale.
func BenchmarkKernelXLACompile(b *testing.B) {
	pf := pairformer.DefaultConfig()
	df := diffusion.DefaultConfig()
	for i := 0; i < b.N; i++ {
		g := xla.BuildInferenceGraph(pf, df, 484, 10)
		if _, err := xla.Compile(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelMSAPipeline measures the real multi-threaded MSA pass.
func BenchmarkKernelMSAPipeline(b *testing.B) {
	dbs, err := msa.BuildDBSet(inputs.Samples(), msa.DefaultDBConfig())
	if err != nil {
		b.Fatal(err)
	}
	in, _ := inputs.ByName("2PV7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := msa.Run(in, msa.Options{Threads: 4, DBs: dbs}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md section 4) -----------------------------------

// BenchmarkAblationCacheModel compares the analytical capacity model
// against the trace-driven set-associative simulator on the same access
// statistics: speed here, agreement checked in simhw's tests.
func BenchmarkAblationCacheModel(b *testing.B) {
	b.Run("analytic", func(b *testing.B) {
		work := simhw.FuncWork{
			Func: "calc_band_9", Instructions: 1e8, Bytes: 4e8,
			Pattern: metering.Strided, HotBytes: 40 << 20,
		}
		spec := simhw.RunSpec{
			Machine: platform.Server(),
			Threads: []simhw.ThreadWork{{Funcs: []simhw.FuncWork{work}}},
		}
		for i := 0; i < b.N; i++ {
			simhw.Simulate(spec)
		}
	})
	b.Run("trace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			simhw.TraceMissRates(1, 40<<20, metering.Strided, 200_000, 48<<10, 2<<20, 30<<20)
		}
	})
}

// BenchmarkAblationBandWidth sweeps the Viterbi band half-width: wider
// bands recover more score but cost proportionally more cells.
func BenchmarkAblationBandWidth(b *testing.B) {
	p, t := benchQueryTarget(484, 400)
	full := hmmer.FullViterbi(p, t, metering.Nop{})
	for _, hw := range []int{3, 9, 27, 81} {
		b.Run(bandName(hw), func(b *testing.B) {
			var res hmmer.AlignResult
			for i := 0; i < b.N; i++ {
				res = hmmer.BandedViterbi(p, t, 0, hw, metering.Nop{})
			}
			b.ReportMetric(float64(res.Cells), "cells/op")
			b.ReportMetric(100*float64(res.Score)/float64(full.Score), "scoreRecoveryPct")
		})
	}
}

func bandName(hw int) string {
	switch hw {
	case 3:
		return "halfWidth3"
	case 9:
		return "halfWidth9"
	case 27:
		return "halfWidth27"
	default:
		return "halfWidth81"
	}
}

// BenchmarkAblationSeedFilter compares the seed prefilter against the
// MSV-filter path (DisableSeedFilter) on the same search.
func BenchmarkAblationSeedFilter(b *testing.B) {
	g := seq.NewGenerator(rng.New(11))
	query := g.Random("q", seq.Protein, 242)
	db, err := seqdb.Generate(seqdb.Spec{
		Name: "abl", Type: seq.Protein, NumSeqs: 80, MeanLen: 200,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 4, Seed: 13,
	})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, disable bool) {
		var cells uint64
		for i := 0; i < b.N; i++ {
			res, err := hmmer.SearchProtein(query, func() hmmer.RecordSource {
				return &hmmer.SliceSource{Seqs: db.Seqs}
			}, db.TotalResidues(), hmmer.SearchOptions{Iterations: 1, DisableSeedFilter: disable}, metering.Nop{})
			if err != nil {
				b.Fatal(err)
			}
			cells = res.CellsDP
		}
		b.ReportMetric(float64(cells), "dpCells")
	}
	b.Run("seedFilter", func(b *testing.B) { run(b, false) })
	b.Run("msvFilter", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationWarmStart compares cold per-request inference against
// the Section VI persistent-model server.
func BenchmarkAblationWarmStart(b *testing.B) {
	s := suite(b)
	in, _ := inputs.ByName("2PV7")
	run := func(b *testing.B, warm bool) {
		var total float64
		for i := 0; i < b.N; i++ {
			pb, err := s.InferenceOnly(in, platform.Server(), warm)
			if err != nil {
				b.Fatal(err)
			}
			total = pb.Total()
		}
		b.ReportMetric(total, "inferenceSec")
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("warm", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPreload compares demand-paged database streaming against
// the Section VI preloading strategy on the desktop (where the cache is
// short).
func BenchmarkAblationPreload(b *testing.B) {
	s := suite(b)
	in, _ := inputs.ByName("1YY9")
	run := func(b *testing.B, preload bool) {
		var disk float64
		for i := 0; i < b.N; i++ {
			pr, err := s.RunPipeline(in, platform.Server(), core.PipelineOptions{Threads: 4, PreloadDBs: preload})
			if err != nil {
				b.Fatal(err)
			}
			disk = pr.MSADiskSeconds
		}
		b.ReportMetric(disk, "inPhaseDiskSec")
	}
	b.Run("demandPaged", func(b *testing.B) { run(b, false) })
	b.Run("preloaded", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationAdaptiveThreads compares AF3's fixed 8-thread default
// against the adaptive per-input choice the paper recommends (Obs. 3).
func BenchmarkAblationAdaptiveThreads(b *testing.B) {
	s := suite(b)
	for _, name := range []string{"2PV7", "6QNR"} {
		in, _ := inputs.ByName(name)
		mach := core.MachineFor(in, platform.Desktop())
		b.Run(name, func(b *testing.B) {
			var fixed, adaptive float64
			for i := 0; i < b.N; i++ {
				pf, err := s.RunPipeline(in, mach, core.PipelineOptions{Threads: 8})
				if err != nil {
					b.Fatal(err)
				}
				fixed = pf.MSASeconds
				adaptive = fixed
				for _, t := range core.MSAThreadSweep {
					pr, err := s.RunPipeline(in, mach, core.PipelineOptions{Threads: t})
					if err != nil {
						b.Fatal(err)
					}
					if pr.MSASeconds < adaptive {
						adaptive = pr.MSASeconds
					}
				}
			}
			b.ReportMetric(fixed, "fixed8TSec")
			b.ReportMetric(adaptive, "adaptiveSec")
		})
	}
}

// BenchmarkAblationPageCache measures the storage model itself: cold scan
// vs cached re-scan.
func BenchmarkAblationPageCache(b *testing.B) {
	const dbBytes = int64(60) << 30
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := simio.New(platform.Server(), 8<<30)
			sys.ReadSequential("db", dbBytes)
		}
	})
	b.Run("warm", func(b *testing.B) {
		sys := simio.New(platform.Server(), 8<<30)
		sys.ReadSequential("db", dbBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.ReadSequential("db", dbBytes)
		}
	})
}

// BenchmarkKernelTracebackAlign measures the traceback-recording DP kernel.
func BenchmarkKernelTracebackAlign(b *testing.B) {
	p, t := benchQueryTarget(484, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmmer.BandedViterbiAlign(p, t, 0, hmmer.BandHalfWidth, metering.Nop{})
	}
}

// BenchmarkKernelSensitivity measures the search-quality harness (a full
// planted-homolog evaluation per iteration).
func BenchmarkKernelSensitivity(b *testing.B) {
	rates := []float64{0.05, 0.2, 0.4}
	var rep *hmmer.SensitivityReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = hmmer.EvaluateSensitivity(rates, hmmer.SensitivityOptions{Seed: 1, Decoys: 100})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Points[0].Recovery(), "recoveryAt5pct")
	b.ReportMetric(rep.FalsePositiveRate(), "falsePositiveRate")
}

// BenchmarkBatchDeployments regenerates the batch-scheduler comparison (the
// §VI + ParaFold extension).
func BenchmarkBatchDeployments(b *testing.B) {
	s := suite(b)
	queue := []string{"2PV7", "1YY9", "7RCE", "2PV7"}
	var seq, pipe *core.BatchResult
	for i := 0; i < b.N; i++ {
		var err error
		seq, err = s.RunBatch(queue, platform.Server(), core.BatchOptions{Threads: 6})
		if err != nil {
			b.Fatal(err)
		}
		pipe, err = s.RunBatch(queue, platform.Server(), core.BatchOptions{Threads: 6, Pipelined: true, WarmModel: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seq.Makespan/pipe.Makespan, "pipelineSpeedup")
}

// BenchmarkAblationRecommendedThreads compares the feature-based adaptive
// policy against the exhaustive sweep it replaces.
func BenchmarkAblationRecommendedThreads(b *testing.B) {
	s := suite(b)
	in, _ := inputs.ByName("promo")
	mach := platform.Server()
	var rec, swept float64
	for i := 0; i < b.N; i++ {
		pr, err := s.RunPipeline(in, mach, core.PipelineOptions{Threads: core.RecommendThreads(in, mach)})
		if err != nil {
			b.Fatal(err)
		}
		rec = pr.TotalSeconds()
		best, err := s.OptimalThreads(in, mach)
		if err != nil {
			b.Fatal(err)
		}
		swept = best.TotalSeconds()
	}
	b.ReportMetric(rec, "recommendedSec")
	b.ReportMetric(swept, "sweptOptimalSec")
}

// BenchmarkModelValidation runs the analytic-vs-trace cache cross-check.
func BenchmarkModelValidation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		var err error
		// Factor 1 compares raw cache geometry (the vendor L1MissFactor
		// models prefetch/op-cache effects the plain LRU trace lacks).
		worst, err = simhw.ValidateRegimes(metering.Random, 48<<10, 2<<20, 30<<20, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(worst, "worstLLCDivergence")
}

// BenchmarkAblationGappedRebuild compares the gapped (traceback-based)
// profile rebuild against the ungapped diagonal projection it replaced:
// hits recruited by the round-2 profile built each way.
func BenchmarkAblationGappedRebuild(b *testing.B) {
	g := seq.NewGenerator(rng.New(71))
	query := g.Random("q", seq.Protein, 200)
	db, err := seqdb.Generate(seqdb.Spec{
		Name: "reb", Type: seq.Protein, NumSeqs: 80, MeanLen: 200,
		Homologs: []*seq.Sequence{query}, HomologsPerQuery: 8, Seed: 72,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Add indel-bearing relatives: the case where the diagonal projection
	// misaligns everything downstream of the gap and the traceback does not.
	for k := 0; k < 6; k++ {
		mut := g.Mutate(query, fmt.Sprintf("indel%02d", k), 0.1)
		pos := 40 + 20*k
		res := append([]byte(nil), mut.Residues[:pos]...)
		res = append(res, g.Random("ins", seq.Protein, 3).Residues...)
		res = append(res, mut.Residues[pos:]...)
		db.Seqs = append(db.Seqs, &seq.Sequence{ID: mut.ID, Type: seq.Protein, Residues: res})
	}
	round1, err := hmmer.SearchProtein(query, func() hmmer.RecordSource {
		return &hmmer.SliceSource{Seqs: db.Seqs}
	}, db.TotalResidues(), hmmer.SearchOptions{Iterations: 1}, metering.Nop{})
	if err != nil {
		b.Fatal(err)
	}

	round2hits := func(stripAlignments bool) float64 {
		hits := append([]hmmer.Hit(nil), round1.Hits...)
		if stripAlignments {
			for i := range hits {
				hits[i].Alignment = nil // falls back to diagonal projection
			}
		}
		rows := hmmer.BuildHitAlignment(query, hits, 1e-3)
		prof, err := hmmer.BuildFromAlignment(query.ID, query.Type, rows)
		if err != nil {
			b.Fatal(err)
		}
		res, err := hmmer.ScanRecords(prof, query, &hmmer.SliceSource{Seqs: db.Seqs},
			db.TotalResidues(), hmmer.SearchOptions{}, metering.Nop{})
		if err != nil {
			b.Fatal(err)
		}
		return float64(len(res.Hits))
	}

	b.Run("gapped", func(b *testing.B) {
		var n float64
		for i := 0; i < b.N; i++ {
			n = round2hits(false)
		}
		b.ReportMetric(n, "round2Hits")
	})
	b.Run("diagonal", func(b *testing.B) {
		var n float64
		for i := 0; i < b.N; i++ {
			n = round2hits(true)
		}
		b.ReportMetric(n, "round2Hits")
	})
}
