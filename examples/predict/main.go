// Predict: run the real math end to end — MSA search, Pairformer trunk,
// diffusion sampling — at reduced model dimensions, and write the sampled
// structure as a PDB file with convergence confidence in the B-factor
// column. This is the "it actually computes something" path; the benchmark
// experiments use the same kernels with analytic scale-up instead.
//
//	go run ./examples/predict [output.pdb]
package main

import (
	"fmt"
	"log"
	"os"

	"afsysbench/internal/diffusion"
	"afsysbench/internal/inputs"
	"afsysbench/internal/msa"
	"afsysbench/internal/pairformer"
	"afsysbench/internal/parallel"
	"afsysbench/internal/rng"
	"afsysbench/internal/seq"
	"afsysbench/internal/structout"
)

func main() {
	out := "prediction.pdb"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}

	// A small two-chain assembly so the real O(N³) trunk stays fast.
	g := seq.NewGenerator(rng.New(99))
	in := &inputs.Input{
		Name: "demo",
		Chains: []inputs.Chain{
			{IDs: []string{"A"}, Sequence: g.Random("demo_A", seq.Protein, 24)},
			{IDs: []string{"B"}, Sequence: g.Random("demo_B", seq.Protein, 16)},
		},
	}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}
	n := in.TotalResidues()
	fmt.Printf("input %s: %d chains, %d residues\n", in.Name, in.ChainCount(), n)

	// One Threads knob governs both parallel stages: the MSA scan shards
	// databases across this many workers, and the compute kernels below run
	// on a pool of the same size. Sharding is deterministic, so the result
	// is bitwise identical at any worker count.
	const threads = 4
	pool := parallel.ForWorkers(threads)

	// 1. MSA phase: real profile-HMM searches against small synthetic
	// databases with planted homologs.
	dbs, err := msa.BuildDBSet([]*inputs.Input{in}, msa.DBConfig{Seed: 5, SeqsPerDB: 60, HomologsPerQuery: 4})
	if err != nil {
		log.Fatal(err)
	}
	msaRes, err := msa.Run(in, msa.Options{Threads: threads, DBs: dbs})
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, c := range msaRes.PerChain {
		hits += c.Hits
	}
	fmt.Printf("MSA: %d hits, alignment depth %d, %d paired rows\n",
		hits, msaRes.Features.Rows, msaRes.Features.PairedRows)

	// 2. Pairformer trunk at reduced dimensions (real triangle updates and
	// attention over the N×N pair representation).
	cfg := pairformer.Config{
		Blocks: 2, PairDim: 16, SingleDim: 32,
		Heads: 2, HeadDim: 8, TriHidden: 16, TransMult: 2,
	}
	src := rng.New(7)
	state := pairformer.RandomState(cfg, n, src.Split(1))
	if err := pairformer.Stack(cfg, state, src.Split(2), pool); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pairformer: %d blocks over %d tokens (pair tensor %d elements)\n",
		cfg.Blocks, n, state.Pair.Len())

	// 3. Diffusion sampling: iterative denoising of atom coordinates with
	// convergence confidence.
	dcfg := diffusion.Config{
		Samples: 1, Steps: 12, TokenDim: 32, AtomDim: 16,
		AtomsPerToken: 4, AtomWindow: 12,
		GlobalLayers: 2, LocalEncLayers: 2, LocalDecLayers: 2, Heads: 2,
	}
	den, err := diffusion.NewDenoiser(dcfg, src.Split(3))
	if err != nil {
		log.Fatal(err)
	}
	coords, conf, err := den.SampleWithConfidence(n, src.Split(4), pool)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Emit the structure.
	atoms, err := structout.FromCoords(coords, in, dcfg.AtomsPerToken, conf)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	if err := structout.WritePDB(f, atoms); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Diffusion: %d steps over %d atoms\n", dcfg.Steps, coords.Shape[0])
	fmt.Printf("wrote %s (%d atoms, mean confidence %.1f)\n",
		out, len(atoms), structout.MeanConfidence(atoms))
}
