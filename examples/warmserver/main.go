// Warmserver: the Section VI "persistent model state" optimization — keep
// the model initialized between requests instead of paying GPU init and XLA
// compilation per inference (AF3's Docker-per-request deployment). The
// example serves the same request trace through two internal/serve
// schedulers, one cold and one persistent, and compares the inference time
// every request was charged.
//
//	go run ./examples/warmserver
package main

import (
	"context"
	"fmt"
	"log"

	"afsysbench/internal/cache"
	"afsysbench/internal/core"
	"afsysbench/internal/platform"
	"afsysbench/internal/serve"
)

// inferenceSeconds drains the trace through a server and sums the modeled
// inference seconds charged per request. Both deployments share the MSA
// cache so the comparison isolates the inference side.
func inferenceSeconds(suite *core.Suite, trace []string, coldModel bool) (float64, error) {
	s := serve.NewWithSuite(suite, serve.Config{
		Threads:   6,
		ColdModel: coldModel,
		Cache:     cache.New(0),
	})
	s.Start()
	defer s.Stop()
	for _, name := range trace {
		if _, err := s.Submit(serve.Request{Sample: name}); err != nil {
			return 0, err
		}
	}
	if err := s.WaitIdle(context.Background()); err != nil {
		return 0, err
	}
	var total float64
	for _, st := range s.Statuses() {
		if st.State != "done" {
			return 0, fmt.Errorf("request %s: %s (%s)", st.ID, st.State, st.Error)
		}
		total += st.InferenceSeconds
	}
	return total, nil
}

func main() {
	suite, err := core.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	mach := platform.Server()

	// A request mix: repeated predictions over the protein samples, the
	// interactive workload where first-request latency matters.
	var trace []string
	for i := 0; i < 4; i++ {
		trace = append(trace, "2PV7", "7RCE", "1YY9")
	}

	// Cold deployment: every request re-initializes (paper: "each
	// inference request incurs repeated model initialization").
	coldTotal, err := inferenceSeconds(suite, trace, true)
	if err != nil {
		log.Fatal(err)
	}
	// Warm server: the persistent process pays init and compile once,
	// outside the request path; requests see only compute.
	warmTotal, err := inferenceSeconds(suite, trace, false)
	if err != nil {
		log.Fatal(err)
	}

	n := float64(len(trace))
	fmt.Printf("served %d inference requests on %s\n\n", len(trace), mach.Name)
	fmt.Printf("cold per-request deployment: %7.0fs total (%.1fs/request)\n", coldTotal, coldTotal/n)
	fmt.Printf("persistent model server:     %7.0fs total (%.1fs/request)\n", warmTotal, warmTotal/n)
	fmt.Printf("throughput improvement:      %.2fx\n", coldTotal/warmTotal)
	fmt.Println("\n(Section VI: avoiding redundant initialization substantially improves")
	fmt.Println(" throughput and responsiveness, especially on the server where init and")
	fmt.Println(" XLA compilation dominate small-input inference.)")
}
