// Warmserver: the Section VI "persistent model state" optimization — keep
// the model initialized between requests instead of paying GPU init and XLA
// compilation per inference (AF3's Docker-per-request deployment). The
// example serves a batch of requests both ways and reports the speedup.
//
//	go run ./examples/warmserver
package main

import (
	"fmt"
	"log"

	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
)

func main() {
	suite, err := core.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	mach := platform.Server()

	// A request mix: repeated predictions over the protein samples, the
	// interactive workload where first-request latency matters.
	var batch []string
	for i := 0; i < 4; i++ {
		batch = append(batch, "2PV7", "7RCE", "1YY9")
	}

	var coldTotal, warmTotal float64
	for i, name := range batch {
		in, err := inputs.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		// Cold deployment: every request re-initializes (paper: "each
		// inference request incurs repeated model initialization").
		cold, err := suite.InferenceOnly(in, mach, false)
		if err != nil {
			log.Fatal(err)
		}
		coldTotal += cold.Total()

		// Warm server: only the first request pays init+compile; the
		// persistent process serves the rest.
		warm, err := suite.InferenceOnly(in, mach, i > 0)
		if err != nil {
			log.Fatal(err)
		}
		warmTotal += warm.Total()
	}

	n := float64(len(batch))
	fmt.Printf("served %d inference requests on %s\n\n", len(batch), mach.Name)
	fmt.Printf("cold per-request deployment: %7.0fs total (%.1fs/request)\n", coldTotal, coldTotal/n)
	fmt.Printf("persistent model server:     %7.0fs total (%.1fs/request)\n", warmTotal, warmTotal/n)
	fmt.Printf("throughput improvement:      %.2fx\n", coldTotal/warmTotal)
	fmt.Println("\n(Section VI: avoiding redundant initialization substantially improves")
	fmt.Println(" throughput and responsiveness, especially on the server where init and")
	fmt.Println(" XLA compilation dominate small-input inference.)")
}
