// Threadsweep: reproduce the Figure 4/5 experiment for one sample — MSA
// execution time and speedup across 1–8 threads on both platforms — and
// apply the paper's Observation 3 by picking an adaptive thread count
// instead of AF3's fixed default of 8.
//
//	go run ./examples/threadsweep [sample]
package main

import (
	"fmt"
	"log"
	"os"

	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/report"
)

func main() {
	sample := "6QNR"
	if len(os.Args) > 1 {
		sample = os.Args[1]
	}
	in, err := inputs.ByName(sample)
	if err != nil {
		log.Fatal(err)
	}
	suite, err := core.NewSuite()
	if err != nil {
		log.Fatal(err)
	}

	rows, err := suite.Figure4([]string{in.Name}, core.TwoPlatforms())
	if err != nil {
		log.Fatal(err)
	}
	if err := report.RenderScaling(os.Stdout,
		fmt.Sprintf("MSA thread scaling for %s (Figures 4-5)", in.Name), rows); err != nil {
		log.Fatal(err)
	}

	// Observation 3: static thread policies are suboptimal. Find each
	// platform's best setting and compare against AF3's fixed default.
	fmt.Println()
	best := map[string]core.ScalingRow{}
	fixed := map[string]core.ScalingRow{}
	for _, r := range rows {
		if cur, ok := best[r.Machine]; !ok || r.Seconds < cur.Seconds {
			best[r.Machine] = r
		}
		if r.Threads == 8 {
			fixed[r.Machine] = r
		}
	}
	for _, mach := range core.TwoPlatforms() {
		b, f := best[mach.Name], fixed[mach.Name]
		fmt.Printf("%s: adaptive choice %dT (%.0fs) vs fixed 8T (%.0fs)",
			mach.Name, b.Threads, b.Seconds, f.Seconds)
		if b.Seconds < f.Seconds {
			fmt.Printf(" -> adaptive saves %.0f%%\n", 100*(f.Seconds-b.Seconds)/f.Seconds)
		} else {
			fmt.Printf(" -> default is already optimal here\n")
		}
	}
}
