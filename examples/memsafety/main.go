// Memsafety: the Figure 2 / Section VI workflow — screen RNA-bearing inputs
// with the static memory estimator before launching, instead of letting the
// OS OOM-killer find out for you (which is what stock AlphaFold3 does).
//
//	go run ./examples/memsafety
package main

import (
	"errors"
	"fmt"
	"log"

	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/platform"
)

func main() {
	suite, err := core.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	mach := platform.ServerWithCXL()
	fmt.Printf("screening the Figure 2 RNA sweep on %s (%d GiB total memory)\n\n",
		mach.Name, mach.TotalMemBytes()>>30)

	for _, in := range inputs.RNASweep() {
		est := memest.Check(in, mach, 8)
		fmt.Printf("RNA %4d residues: projected peak %5.0f GiB -> %s\n",
			in.MaxRNALength(), float64(est.PeakBytes)/(1<<30), est.Verdict)

		// The pipeline enforces the same gate: a projected-OOM input is
		// rejected before any compute is spent.
		_, err := suite.RunPipeline(in, mach, core.PipelineOptions{Threads: 8})
		var oom core.ErrProjectedOOM
		switch {
		case errors.As(err, &oom):
			fmt.Printf("  pipeline refused: %v\n", err)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("  pipeline ran to completion\n")
		}
	}

	fmt.Println()
	for _, m := range []platform.Machine{platform.Desktop(), platform.Server(), platform.ServerWithCXL()} {
		fmt.Printf("longest safe RNA chain on %-12s %d residues\n", m.Name+":", memest.MaxSafeRNALength(m))
	}
}
