// Quickstart: run one sample end to end on both platforms and print the
// phase breakdown — the "hello world" of the suite.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/report"
	"afsysbench/internal/trace"
)

func main() {
	// A suite bundles the synthetic reference databases and the AF3-scale
	// inference model. Construction generates everything deterministically.
	suite, err := core.NewSuite()
	if err != nil {
		log.Fatal(err)
	}

	// Pick a Table II sample. 2PV7 is the small symmetric protein dimer.
	in, err := inputs.ByName("2PV7")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample %s: %d chains, %d residues\n\n", in.Name, in.ChainCount(), in.TotalResidues())

	// Run the full pipeline (MSA phase + inference phase) on each platform
	// at AF3's default 8 threads.
	var bars []report.Bar
	for _, mach := range core.TwoPlatforms() {
		pr, err := suite.RunPipeline(in, mach, core.PipelineOptions{Threads: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: MSA %.0fs (%.0f%% of total), inference %.0fs, disk util %.0f%%\n",
			mach.Name, pr.MSASeconds, 100*pr.MSAFraction(), pr.Inference.Total(), pr.DiskUtilPct)
		bars = append(bars, report.Bar{
			Label: mach.Name,
			Segments: []report.Segment{
				{Name: "MSA", Value: pr.MSASeconds},
				{Name: "inference", Value: pr.Inference.Total()},
			},
		})

		// An Nsight-style timeline of the inference phase.
		tl := trace.FromInference(fmt.Sprintf("%s inference on %s", in.Name, mach.Name), pr.Inference)
		fmt.Println()
		if err := tl.Render(os.Stdout, 50); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	if err := report.StackedBars(os.Stdout, "end-to-end comparison", bars, 50); err != nil {
		log.Fatal(err)
	}
}
