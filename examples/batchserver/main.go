// Batchserver: serve a mixed request queue through internal/serve and
// measure what each deployment refinement buys over AF3's stock
// one-request-per-container execution: the §VI persistent model, the
// ParaFold-style phase-split pipeline (separate CPU and GPU worker pools),
// and the AF_Cache-style content-addressed MSA cache. Makespans are the
// scheduler's modeled (virtual-time) replays of the same completed trace,
// so the rows differ only by deployment, never by measurement noise.
//
//	go run ./examples/batchserver
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"afsysbench/internal/cache"
	"afsysbench/internal/core"
	"afsysbench/internal/platform"
	"afsysbench/internal/report"
	"afsysbench/internal/serve"
)

// runQueue drains the queue through one server configuration and returns
// the stopped server for post-hoc schedule analysis.
func runQueue(suite *core.Suite, cfg serve.Config, queue []string) (*serve.Server, error) {
	s := serve.NewWithSuite(suite, cfg)
	s.Start()
	defer s.Stop()
	for _, name := range queue {
		if _, err := s.Submit(serve.Request{Sample: name}); err != nil {
			return nil, err
		}
	}
	if err := s.WaitIdle(context.Background()); err != nil {
		return nil, err
	}
	return s, nil
}

func main() {
	suite, err := core.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	mach := platform.Server()
	// One worker per resource, like the paper's single-node platforms: the
	// pipeline win is CPU/GPU overlap, the cache win is skipped searches.
	const cpuWorkers, gpuWorkers = 1, 1

	// A mixed request queue with repeats — screening traffic in miniature.
	queue := []string{"2PV7", "1YY9", "7RCE", "promo", "2PV7", "1YY9", "7RCE", "2PV7"}
	fmt.Printf("serving %d requests on %s (%d CPU worker, %d GPU worker)\n\n",
		len(queue), mach.Name, cpuWorkers, gpuWorkers)

	// Three server runs cover the four deployments: the serial rows are the
	// stock replay (one request at a time) of the cold and warm traces; the
	// phase-split rows are the pooled replays of the warm traces.
	cold, err := runQueue(suite, serve.Config{Threads: 6, MSAWorkers: cpuWorkers, GPUWorkers: gpuWorkers, ColdModel: true}, queue)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := runQueue(suite, serve.Config{Threads: 6, MSAWorkers: cpuWorkers, GPUWorkers: gpuWorkers}, queue)
	if err != nil {
		log.Fatal(err)
	}
	cached, err := runQueue(suite, serve.Config{Threads: 6, MSAWorkers: cpuWorkers, GPUWorkers: gpuWorkers, Cache: cache.New(0)}, queue)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		label    string
		makespan float64
		sched    serve.Schedule
	}
	rows := []row{
		{label: "stock (serial, cold model)", makespan: cold.SerialMakespan()},
		{label: "persistent model (§VI)", makespan: warm.SerialMakespan()},
		{label: "phase-split pipeline (ParaFold-style)", sched: warm.ModeledSchedule(cpuWorkers, gpuWorkers)},
		{label: "phase-split + MSA cache (AF_Cache-style)", sched: cached.ModeledSchedule(cpuWorkers, gpuWorkers)},
	}
	base := rows[0].makespan
	var trows [][]string
	for i := range rows {
		r := &rows[i]
		cpuUtil, gpuUtil := "-", "-"
		if r.makespan == 0 {
			r.makespan = r.sched.Makespan
			cpuUtil = report.Pct(r.sched.CPUUtilPct())
			gpuUtil = report.Pct(r.sched.GPUUtilPct())
		}
		trows = append(trows, []string{
			r.label,
			report.F0(r.makespan) + "s",
			fmt.Sprintf("%.1f/h", float64(len(queue))/r.makespan*3600),
			cpuUtil,
			gpuUtil,
			fmt.Sprintf("%.2fx", base/r.makespan),
		})
	}
	if err := report.Table(os.Stdout, []string{"deployment", "makespan", "throughput", "CPU util", "GPU util", "speedup"}, trows); err != nil {
		log.Fatal(err)
	}

	// The cached phase-split schedule as a per-worker gantt: the CPU lanes
	// run the next requests' MSA while the GPU infers the previous ones,
	// and cache hits (repeat queries) skip the CPU lanes entirely.
	fmt.Println()
	if err := report.RenderSchedule(os.Stdout, "phase-split + cache schedule",
		cached.ModeledSchedule(cpuWorkers, gpuWorkers), cached.SerialMakespan(), 76); err != nil {
		log.Fatal(err)
	}
	st := cached.Config().Cache.Stats()
	fmt.Printf("\nMSA cache: %d misses, %d served (hit rate %.0f%%)\n",
		st.Misses, st.Hits+st.Shared, 100*st.HitRate())
}
