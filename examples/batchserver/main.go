// Batchserver: combine the paper's §VI persistent-model recommendation with
// ParaFold-style CPU/GPU pipelining (Related Work) and measure what they
// buy over AF3's stock one-request-per-container deployment.
//
//	go run ./examples/batchserver
package main

import (
	"fmt"
	"log"
	"os"

	"afsysbench/internal/core"
	"afsysbench/internal/platform"
	"afsysbench/internal/report"
	"afsysbench/internal/trace"
)

func main() {
	suite, err := core.NewSuite()
	if err != nil {
		log.Fatal(err)
	}
	mach := platform.Server()

	// A mixed request queue.
	queue := []string{"2PV7", "1YY9", "7RCE", "promo", "2PV7", "1YY9", "7RCE", "2PV7"}
	fmt.Printf("serving %d requests on %s\n\n", len(queue), mach.Name)

	configs := []struct {
		label string
		opts  core.BatchOptions
	}{
		{"stock (sequential, cold model)", core.BatchOptions{Threads: 6}},
		{"persistent model (§VI)", core.BatchOptions{Threads: 6, WarmModel: true}},
		{"pipelined CPU/GPU (ParaFold-style)", core.BatchOptions{Threads: 6, Pipelined: true}},
		{"pipelined + persistent", core.BatchOptions{Threads: 6, Pipelined: true, WarmModel: true}},
	}

	var rows [][]string
	var base float64
	var pipelined *core.BatchResult
	for i, cfg := range configs {
		res, err := suite.RunBatch(queue, mach, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res.Makespan
		}
		if i == len(configs)-1 {
			pipelined = res
		}
		rows = append(rows, []string{
			cfg.label,
			report.F0(res.Makespan) + "s",
			fmt.Sprintf("%.1f/h", res.Throughput()),
			report.Pct(100 * res.CPUBusy / res.Makespan),
			report.Pct(100 * res.GPUBusy / res.Makespan),
			fmt.Sprintf("%.2fx", base/res.Makespan),
		})
	}
	if err := report.Table(os.Stdout, []string{"deployment", "makespan", "throughput", "CPU util", "GPU util", "speedup"}, rows); err != nil {
		log.Fatal(err)
	}

	// The pipelined schedule as a two-lane gantt: the CPU runs the next
	// request's MSA while the GPU infers the previous one.
	fmt.Println()
	var lanes trace.Lanes
	lanes.Title = "pipelined + persistent schedule"
	for _, item := range pipelined.Items {
		lanes.AddSpan("CPU (MSA)", item.Sample, item.Start, item.Start+item.MSASeconds)
		lanes.AddSpan("GPU (inference)", item.Sample, item.Finish-item.InferenceSeconds, item.Finish)
	}
	if err := lanes.Render(os.Stdout, 76); err != nil {
		log.Fatal(err)
	}
}
