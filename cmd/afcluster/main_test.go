package main

import (
	"testing"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.shards != 8 || o.replicas != 3 {
		t.Fatalf("defaults: %+v", o)
	}
	if _, err := parseFlags([]string{"-shards", "0"}); err == nil {
		t.Fatal("-shards 0 accepted")
	}
	if _, err := parseFlags([]string{"-n", "-1"}); err == nil {
		t.Fatal("-n -1 accepted")
	}
}

func TestParseCounts(t *testing.T) {
	got, err := parseCounts("1, 2,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 16 {
		t.Fatalf("parseCounts: %v", got)
	}
	if _, err := parseCounts("4,-1"); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := parseCounts(""); err == nil {
		t.Fatal("empty count list accepted")
	}
}

// TestScalingRunSmoke is the `make check` cluster smoke: a tiny sweep end
// to end — reference pass, live scatter-gather cluster pass, digest
// verification, scaling curve — asserting the determinism contract and
// the efficiency gate hold, and that the routing block is populated.
func TestScalingRunSmoke(t *testing.T) {
	o := options{
		shards:        4,
		replicas:      2,
		sweepShards:   "1,2,16",
		sweepReplicas: "1,2",
		n:             6,
		mix:           "2PV7:2,promo:1",
		seed:          7,
		threads:       2,
		msaWorkers:    2,
		gpuWorkers:    1,
	}
	section, violations, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("violation: %s", v)
	}
	if !section.DigestMatch {
		t.Error("cluster results diverged from the single-node reference")
	}
	if section.Cluster.Scans == 0 || section.Cluster.Dispatches == 0 {
		t.Errorf("cluster stats empty: %+v", section.Cluster)
	}
	if section.Router.Completed != int64(o.n) {
		t.Errorf("router completed %d of %d", section.Router.Completed, o.n)
	}
	if eff := section.Curve.ShardEfficiencyAt(16); eff < 0.8 {
		t.Errorf("shard efficiency at 16 = %.3f, want ≥ 0.8", eff)
	}
	if section.Routing == nil || len(section.Routing.PerShard) != o.shards {
		t.Fatalf("routing block missing or wrong shard count: %+v", section.Routing)
	}
	var dispatches int64
	for _, row := range section.Routing.PerShard {
		dispatches += row.Dispatches
	}
	if dispatches != section.Cluster.Dispatches {
		t.Errorf("per-shard dispatches sum to %d, cluster counted %d", dispatches, section.Cluster.Dispatches)
	}
}
