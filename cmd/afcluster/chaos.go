// The cluster kill-storm gate (`afcluster -chaos`, wired as `make
// chaos-cluster`): drive a seeded trace through the full scale-out stack
// while whole shard nodes and a serving replica are killed mid-storm, and
// assert the blast radius stayed contained:
//
//   - zero wrong results — every completed request's digest matches the
//     single-node reference, kills or not (the scatter determinism
//     contract under fire);
//   - zero lost requests — the router failed every affected request over
//     to surviving replicas/nodes;
//   - the degradation was COUNTED — shard failovers and router failovers
//     both nonzero, because a resilience layer that cannot see its own
//     failovers cannot be monitored;
//   - surviving replicas at full worker strength, killed ones rejected;
//   - no goroutine leaks once the storm drains.
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/serve"
)

const (
	// killNodeA/killNodeB are the shard nodes killed mid-storm (the rig
	// keeps N ≥ 3 so shards always have a surviving owner); victimReplica
	// is the serving replica killed while it has requests in flight.
	killNodeA     = 2
	killNodeB     = 5
	victimReplica = 1
)

func runChaos(o options) int {
	if o.shards < 3 {
		fmt.Fprintln(os.Stderr, "afcluster -chaos: need -shards ≥ 3 (two nodes die)")
		return 2
	}
	if o.replicas < 2 {
		fmt.Fprintln(os.Stderr, "afcluster -chaos: need -replicas ≥ 2 (one replica dies)")
		return 2
	}
	var violations []string
	baseline := runtime.NumGoroutine()

	samples, weights, err := parseMix(o.mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "afcluster -chaos: %v\n", err)
		return 2
	}
	trace := buildTrace(samples, weights, o.n, o.seed)
	suite, err := core.NewSuite()
	if err != nil {
		fmt.Fprintf(os.Stderr, "afcluster -chaos: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "chaos-cluster: reference pass (%d distinct samples)\n", len(samples))
	digests, _, err := reference(suite, trace, o.threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "afcluster -chaos: reference: %v\n", err)
		return 2
	}

	fmt.Fprintf(os.Stderr, "chaos-cluster: storm — %d requests over %d shards × %d replicas, killing nodes %d,%d and replica %d\n",
		o.n, o.shards, o.replicas, killNodeA, killNodeB, victimReplica)
	rig := buildRig(suite, o, serve.HedgeConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)

	// Kill triggers: node A after a third of the trace completes, node B
	// plus the victim replica after half. The replica kill waits (briefly)
	// for in-flight work on the victim so the death actually strands
	// requests mid-stage instead of hitting an idle server.
	killsDone := make(chan struct{})
	progress := make(chan int, o.n)
	go func() {
		defer close(killsDone)
		first, second := o.n/3, o.n/2
		done := 0
		killedA, killedB := false, false
		for range progress {
			done++
			if !killedA && done >= first {
				rig.cl.KillNode(killNodeA)
				killedA = true
			}
			if !killedB && done >= second {
				deadline := time.Now().Add(2 * time.Second)
				for rig.router.Outstanding(victimReplica) == 0 && time.Now().Before(deadline) {
					time.Sleep(200 * time.Microsecond)
				}
				rig.cl.KillNode(killNodeB)
				rig.router.Kill(victimReplica)
				killedB = true
			}
		}
	}()
	workers := o.concurrency
	if workers <= 0 {
		workers = 2 * o.replicas * o.msaWorkers
	}
	results, errs := rig.drive(ctx, trace, o.threads, workers, func(int) { progress <- 1 })
	close(progress)
	<-killsDone
	cancel()

	// Invariant: every request completed with the reference digest.
	wrong, lost := 0, 0
	for i := range results {
		if errs[i] != nil {
			lost++
			if lost <= 3 {
				violations = append(violations, fmt.Sprintf("request %d (%s) lost: %v", i, trace[i], errs[i]))
			}
			continue
		}
		if results[i].Result == nil {
			lost++
			continue
		}
		if resultDigest(results[i].Result) != digests[trace[i]] {
			wrong++
			if wrong <= 3 {
				violations = append(violations, fmt.Sprintf("request %d (%s): WRONG RESULT after kill storm", i, trace[i]))
			}
		}
	}
	if lost > 3 {
		violations = append(violations, fmt.Sprintf("… and %d more lost requests", lost-3))
	}

	// Invariant: the degradation was counted, node by node.
	clStats := rig.cl.Stats()
	rtStats := rig.router.Stats()
	if clStats.Failovers == 0 {
		violations = append(violations, "two shard nodes died but cluster stats count zero failovers")
	}
	if rtStats.Failovers == 0 && rtStats.ShedReroutes == 0 {
		violations = append(violations, "a replica died mid-storm but router stats count zero failovers/reroutes")
	}
	if !clStats.PerNode[killNodeA].Killed || !clStats.PerNode[killNodeB].Killed {
		violations = append(violations, "killed shard nodes not marked in per-node stats")
	}
	if rig.cl.AliveNodes() != o.shards-2 {
		violations = append(violations, fmt.Sprintf("alive nodes = %d, want %d", rig.cl.AliveNodes(), o.shards-2))
	}

	// Invariant: survivors at full strength, the victim rejecting.
	for i, srv := range rig.replicas {
		if i == victimReplica {
			if !srv.Killed() {
				violations = append(violations, "victim replica not marked killed")
			}
			if _, err := srv.Submit(serve.Request{Sample: trace[0]}); err == nil {
				violations = append(violations, "killed replica accepted a submission after the storm")
			}
			continue
		}
		if ph := srv.PoolHealth(); !ph.FullStrength() {
			violations = append(violations, fmt.Sprintf("surviving replica %d pool degraded: %+v", i, ph))
		}
	}

	rig.stop()

	// Invariant: no goroutine leaks once the storm drains.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > baseline {
		violations = append(violations, fmt.Sprintf("goroutine leak: %d before storm, %d after drain", baseline, now))
	}

	fmt.Fprintf(os.Stderr, "chaos-cluster: %d requests, %d wrong, %d lost; shard failovers=%d, router failovers=%d, shed reroutes=%d\n",
		o.n, wrong, lost, clStats.Failovers, rtStats.Failovers, rtStats.ShedReroutes)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "reproduce: go run ./cmd/afcluster -chaos -shards %d -replicas %d -n %d -mix %s -seed %d -threads %d -msa-workers %d -gpu-workers %d\n",
			o.shards, o.replicas, o.n, o.mix, o.seed, o.threads, o.msaWorkers, o.gpuWorkers)
		return 1
	}
	fmt.Fprintln(os.Stderr, "chaos-cluster: all invariants held")
	return 0
}
