// afcluster drives the multi-node scale-out tier: a sharded scatter-gather
// MSA scan (internal/cluster) under a health-aware router over replicated
// serve.Servers. It verifies the determinism contract end to end — every
// routed request's result must be bitwise-identical to the single-node
// pipeline — then sweeps shards × replicas into the modeled scaling curve
// and merges it into BENCH_serve.json as the "cluster_scaling" section.
//
//	afcluster -shards 8 -replicas 3 -n 24 -mix 2PV7:3,1YY9:2 -json BENCH_serve.json
//	afcluster -chaos -seed 13 -shards 8 -replicas 3 -n 40
//
// Exit code 1 means a broken invariant: a digest mismatch, a failed
// request, or a scaling curve under the 0.8 efficiency gate at 16 shards.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"afsysbench/internal/cluster"
	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
	"afsysbench/internal/rng"
	"afsysbench/internal/serve"
)

type options struct {
	shards        int
	replicas      int
	sweepShards   string
	sweepReplicas string
	n             int
	mix           string
	seed          uint64
	threads       int
	msaWorkers    int
	gpuWorkers    int
	queue         int
	concurrency   int
	jsonPath      string
	chaos         bool
}

func parseFlags(args []string) (options, error) {
	o := options{}
	fs := flag.NewFlagSet("afcluster", flag.ContinueOnError)
	fs.IntVar(&o.shards, "shards", 8, "shard node count N for the live cluster pass")
	fs.IntVar(&o.replicas, "replicas", 3, "serve replica count R")
	fs.StringVar(&o.sweepShards, "sweep-shards", "1,2,4,8,16", "comma-separated shard counts for the scaling curve")
	fs.StringVar(&o.sweepReplicas, "sweep-replicas", "1,2,4", "comma-separated replica counts for the scaling curve")
	fs.IntVar(&o.n, "n", 24, "request count")
	fs.StringVar(&o.mix, "mix", "2PV7:3,1YY9:2,6QNR:1", "request mix name:weight,...")
	fs.Uint64Var(&o.seed, "seed", 7, "trace seed")
	fs.IntVar(&o.threads, "threads", 2, "per-request MSA threads")
	fs.IntVar(&o.msaWorkers, "msa-workers", 2, "MSA workers per replica")
	fs.IntVar(&o.gpuWorkers, "gpu-workers", 1, "GPU workers per replica")
	fs.IntVar(&o.queue, "queue", 0, "admission queue depth per replica (0 = fit the trace)")
	fs.IntVar(&o.concurrency, "concurrency", 0, "request driver concurrency (0 = 2×replicas×msa-workers)")
	fs.StringVar(&o.jsonPath, "json", "", "merge the cluster_scaling section into this BENCH_serve.json")
	fs.BoolVar(&o.chaos, "chaos", false, "run the seeded kill-storm gate instead of the scaling sweep")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.shards <= 0 || o.replicas <= 0 {
		return o, fmt.Errorf("-shards and -replicas must be positive")
	}
	if o.n <= 0 {
		return o, fmt.Errorf("-n must be positive")
	}
	return o, nil
}

func parseCounts(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty count list")
	}
	return out, nil
}

func parseMix(spec string) ([]string, []int, error) {
	var samples []string
	var weights []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		w := 1
		if ok {
			var err error
			w, err = strconv.Atoi(wstr)
			if err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("bad mix weight in %q", part)
			}
		}
		samples = append(samples, name)
		weights = append(weights, w)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("empty -mix")
	}
	return samples, weights, nil
}

// buildTrace mirrors afload's deterministic weighted trace (same split
// constant, so the same seed+mix yields the same request sequence across
// the two drivers).
func buildTrace(samples []string, weights []int, n int, seed uint64) []string {
	total := 0
	for _, w := range weights {
		total += w
	}
	src := rng.New(seed).Split(0x10AD)
	trace := make([]string, n)
	for i := range trace {
		pick := src.Split(uint64(i)).Intn(total)
		for j, w := range weights {
			if pick < w {
				trace[i] = samples[j]
				break
			}
			pick -= w
		}
	}
	return trace
}

// resultDigest captures everything about a request's outcome that the
// cluster tier must never change — the same fields the cache chaos gate
// pins.
func resultDigest(res *core.PipelineResult) string {
	return fmt.Sprintf("%s|%x|%x|%x|%x|%x|%d|%d|%d",
		res.Sample,
		res.MSASeconds, res.MSACPUSeconds, res.MSADiskSeconds,
		res.Inference.ComputeSeconds, res.Inference.Total(),
		res.MSAData.Features.Bytes(),
		res.MSAData.TotalHitResidues, res.MSAData.SerialInstructions)
}

// reference runs each distinct trace sample once through the single-node
// pipeline with the exact per-request options the serving tier uses
// (canonical run index, fresh MSA, warm model) and returns the per-sample
// digests plus the scaling-model request points for the full trace.
func reference(suite *core.Suite, trace []string, threads int) (map[string]string, []cluster.RequestPoint, error) {
	digests := make(map[string]string)
	points := make([]cluster.RequestPoint, 0, len(trace))
	bySample := make(map[string]cluster.RequestPoint)
	for _, sample := range trace {
		if _, ok := digests[sample]; ok {
			points = append(points, bySample[sample])
			continue
		}
		in, err := inputs.ByName(sample)
		if err != nil {
			return nil, nil, err
		}
		mach := core.MachineFor(in, platform.Server())
		opts := core.PipelineOptions{Threads: threads, RunIndex: 0, WarmStart: true, FreshMSA: true}
		mp, err := suite.RunMSAPhase(context.Background(), in, mach, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("reference MSA %s: %w", sample, err)
		}
		pb, err := suite.RunInferencePhase(context.Background(), in, mach, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("reference inference %s: %w", sample, err)
		}
		res := core.ComposeResult(in, mach, threads, mp, pb)
		digests[sample] = resultDigest(res)
		pt := cluster.PointFromResult(res)
		bySample[sample] = pt
		points = append(points, pt)
	}
	return digests, points, nil
}

// clusterRig is one assembled scale-out stack: N-shard scatter cluster,
// R replicas scanning through it, and the router in front.
type clusterRig struct {
	cl       *cluster.Cluster
	replicas []*serve.Server
	router   *cluster.Router
}

func buildRig(suite *core.Suite, o options, hedge serve.HedgeConfig) *clusterRig {
	queue := o.queue
	if queue <= 0 {
		queue = o.n + 1
	}
	cl := cluster.New(cluster.Config{Shards: o.shards, Fingerprint: suite.DBs.Fingerprint()})
	reps := make([]*serve.Server, o.replicas)
	for i := range reps {
		reps[i] = serve.NewWithSuite(suite, serve.Config{
			Threads:    o.threads,
			MSAWorkers: o.msaWorkers,
			GPUWorkers: o.gpuWorkers,
			QueueDepth: queue,
			Scatter:    cl.Scatter,
		})
		reps[i].Start()
	}
	return &clusterRig{cl: cl, replicas: reps, router: cluster.NewRouter(reps, cluster.RouterConfig{Hedge: hedge})}
}

func (r *clusterRig) stop() {
	for _, srv := range r.replicas {
		srv.Stop()
	}
}

// drive pushes the trace through the router with bounded concurrency,
// preserving submit order per worker cursor. onDone (optional) observes
// each completed ordinal for the chaos kill triggers.
func (r *clusterRig) drive(ctx context.Context, trace []string, threads, workers int, onDone func(i int)) ([]cluster.RouteResult, []error) {
	if workers <= 0 {
		workers = 1
	}
	results := make([]cluster.RouteResult, len(trace))
	errs := make([]error, len(trace))
	var cursor int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := cursor
				cursor++
				mu.Unlock()
				if i >= len(trace) {
					return
				}
				results[i], errs[i] = r.router.Do(ctx, serve.Request{Sample: trace[i], Threads: threads})
				if onDone != nil {
					onDone(i)
				}
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// scalingSection is the BENCH_serve.json "cluster_scaling" payload.
type scalingSection struct {
	Shards      int                     `json:"shards"`
	Replicas    int                     `json:"replicas"`
	Requests    int                     `json:"requests"`
	Mix         string                  `json:"mix"`
	Seed        uint64                  `json:"seed"`
	DigestMatch bool                    `json:"digest_match"`
	Cluster     cluster.Stats           `json:"cluster"`
	Router      cluster.RouterStats     `json:"router"`
	Routing     *serve.RoutingBreakdown `json:"routing"`
	Curve       cluster.ScalingCurve    `json:"curve"`
}

// routingBreakdown folds the scatter layer's per-node counters and the
// router's failover/hedge counters into the same one-stop block afload
// embeds in its per-pass stats, with one per-shard row per node.
func routingBreakdown(cl cluster.Stats, rt cluster.RouterStats) *serve.RoutingBreakdown {
	rb := &serve.RoutingBreakdown{
		ShedReroutes:     rt.ShedReroutes,
		Hedges:           rt.Hedges,
		HedgeBackupWins:  rt.HedgeBackupWins,
		ReplicaFailovers: rt.Failovers,
		ShardFailovers:   cl.Failovers,
	}
	for _, n := range cl.PerNode {
		rb.PerShard = append(rb.PerShard, serve.ShardCounters{
			Shard:      fmt.Sprintf("node-%d", n.Node),
			Dispatches: n.Dispatches,
			Failovers:  n.Failovers,
			Killed:     n.Killed,
		})
	}
	return rb
}

func run(o options) (*scalingSection, []string, error) {
	samples, weights, err := parseMix(o.mix)
	if err != nil {
		return nil, nil, err
	}
	sweepN, err := parseCounts(o.sweepShards)
	if err != nil {
		return nil, nil, fmt.Errorf("-sweep-shards: %w", err)
	}
	sweepR, err := parseCounts(o.sweepReplicas)
	if err != nil {
		return nil, nil, fmt.Errorf("-sweep-replicas: %w", err)
	}
	trace := buildTrace(samples, weights, o.n, o.seed)
	suite, err := core.NewSuite()
	if err != nil {
		return nil, nil, err
	}

	fmt.Fprintf(os.Stderr, "afcluster: reference pass (%d distinct samples)\n", len(samples))
	digests, points, err := reference(suite, trace, o.threads)
	if err != nil {
		return nil, nil, err
	}

	fmt.Fprintf(os.Stderr, "afcluster: cluster pass (%d shards × %d replicas, %d requests)\n", o.shards, o.replicas, o.n)
	rig := buildRig(suite, o, serve.HedgeConfig{})
	defer rig.stop()
	workers := o.concurrency
	if workers <= 0 {
		workers = 2 * o.replicas * o.msaWorkers
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	results, errs := rig.drive(ctx, trace, o.threads, workers, nil)

	var violations []string
	match := true
	for i, res := range results {
		if errs[i] != nil {
			violations = append(violations, fmt.Sprintf("request %d (%s): %v", i, trace[i], errs[i]))
			match = false
			continue
		}
		if res.Result == nil {
			violations = append(violations, fmt.Sprintf("request %d (%s): no result", i, trace[i]))
			match = false
			continue
		}
		if got, want := resultDigest(res.Result), digests[trace[i]]; got != want {
			violations = append(violations, fmt.Sprintf("request %d (%s): digest mismatch\n  got  %s\n  want %s", i, trace[i], got, want))
			match = false
		}
	}

	clStats := rig.cl.Stats()
	np := cluster.NetProfileFromStats(clStats, o.n)
	records := 0
	if len(suite.DBs.Protein) > 0 {
		records = suite.DBs.Protein[0].NumSeqs()
	}
	curve := cluster.BuildScalingCurve(points, sweepN, sweepR, records, suite.DBs.Fingerprint(), np, cluster.DefaultNet(), o.msaWorkers, o.gpuWorkers)
	for _, n := range sweepN {
		if n >= 16 {
			if eff := curve.ShardEfficiencyAt(n); eff < 0.8 {
				violations = append(violations, fmt.Sprintf("shard efficiency at %d shards = %.3f, below the 0.8 gate", n, eff))
			}
		}
	}

	rtStats := rig.router.Stats()
	section := &scalingSection{
		Shards:      o.shards,
		Replicas:    o.replicas,
		Requests:    o.n,
		Mix:         o.mix,
		Seed:        o.seed,
		DigestMatch: match,
		Cluster:     clStats,
		Router:      rtStats,
		Routing:     routingBreakdown(clStats, rtStats),
		Curve:       curve,
	}
	return section, violations, nil
}

// mergeJSON folds the cluster_scaling section into an existing
// BENCH_serve.json (or creates the file holding just the section).
func mergeJSON(path string, section *scalingSection) error {
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	doc["cluster_scaling"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if o.chaos {
		os.Exit(runChaos(o))
	}
	section, violations, err := run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "afcluster: %v\n", err)
		os.Exit(1)
	}
	if o.jsonPath != "" {
		if err := mergeJSON(o.jsonPath, section); err != nil {
			fmt.Fprintf(os.Stderr, "afcluster: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "afcluster: merged cluster_scaling into %s\n", o.jsonPath)
	} else {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(section)
	}
	fmt.Fprintf(os.Stderr, "afcluster: %d requests, digest_match=%v, shard_eff@16=%.3f, shard failovers=%d, router failovers=%d\n",
		o.n, section.DigestMatch, section.Curve.ShardEfficiencyAt(16), section.Cluster.Failovers, section.Router.Failovers)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "reproduce: go run ./cmd/afcluster -shards %d -replicas %d -n %d -mix %s -seed %d\n",
			o.shards, o.replicas, o.n, o.mix, o.seed)
		os.Exit(1)
	}
}
