package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// Golden snapshots for the fully deterministic experiments: the platform
// and sample tables and the Figure 2 memory sweep. These catch accidental
// drift in the encoded paper facts or the render format.

func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", runErr, out)
	}
	return out
}

func TestGoldenFigure2(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-exp", "fig2"}) })
	want := strings.TrimLeft(`
Figure 2: peak memory vs RNA sequence length (nhmmer)
  main memory: 512 GiB; with CXL expansion: 768 GiB
RNA length  peak GiB  server           server+CXL  provenance
----------  --------  ---------------  ----------  ----------------------------------------
621         79.3      OK               OK          measured
935         506.0     NEEDS-EXPANSION  OK          measured
1135        644.0     NEEDS-EXPANSION  OK          measured, required CXL expansion
1335        810.0     OOM              OOM         projected (run OOM-killed above 768 GiB)
`, "\n")
	if out != want {
		t.Errorf("figure 2 output drifted:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

func TestGoldenTable1ContainsPaperFacts(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-exp", "tab1"}) })
	for _, fact := range []string{
		"Intel Xeon Gold 5416S", "16/32", "2.0/4.0 GHz", "30 MiB", "512 GiB", "H100",
		"AMD Ryzen 9 7900X", "12/24", "4.7/5.6 GHz", "64 MiB", "RTX 4080",
	} {
		if !strings.Contains(out, fact) {
			t.Errorf("Table I missing %q", fact)
		}
	}
}

func TestGoldenTable2ContainsSampleFacts(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-exp", "tab2"}) })
	for _, fact := range []string{"2PV7", "484", "7RCE", "306", "1YY9", "881", "promo", "857", "6QNR", "1395", "600"} {
		if !strings.Contains(out, fact) {
			t.Errorf("Table II missing %q", fact)
		}
	}
}

func TestGoldenDeterminism(t *testing.T) {
	a := captureStdout(t, func() error { return run([]string{"-exp", "fig2"}) })
	b := captureStdout(t, func() error { return run([]string{"-exp", "fig2"}) })
	if a != b {
		t.Error("deterministic experiment produced different output across runs")
	}
}

// captureRun invokes the CLI entry point, returning stdout, the exit code
// and the error (which some failure classes legitimately carry).
func captureRun(t *testing.T, args []string) (string, int, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	code, runErr := runCLI(args)
	w.Close()
	os.Stdout = old
	return <-done, code, runErr
}

func TestGoldenRunDegradedExitAndReport(t *testing.T) {
	args := []string{"-run", "2PV7", "-machine", "desktop", "-threads", "4",
		"-faults", "transient:uniref_s:2,permanent:mgnify_s"}
	out, code, err := captureRun(t, args)
	if err != nil {
		t.Fatalf("degraded run must not error: %v", err)
	}
	if code != exitDegraded {
		t.Fatalf("exit = %d, want %d (degraded success)", code, exitDegraded)
	}
	// The resilience block is seeded, not wall-clock: it must match byte
	// for byte, retry waits included.
	want := strings.TrimLeft(`
resilience: retries=2 retry_wait=1.37s dropped=1 single_sequence=false degraded=true
  msa     retry           uniref_s (0.53s): open attempt 1 failed; backing off
  msa     retry           uniref_s (0.84s): open attempt 2 failed; backing off
  msa     drop-db         mgnify_s: resilience: database mgnify_s unavailable after 1 attempts: resilience: injected permanent fault on mgnify_s (attempt 1)
`, "\n")
	if !strings.Contains(out, want) {
		t.Errorf("resilience report drifted:\n--- got ---\n%s\n--- want block ---\n%s", out, want)
	}
	// And the whole report (timings included) is reproducible.
	again, code2, _ := captureRun(t, args)
	if out != again || code2 != code {
		t.Error("repeat faulted run produced different output or exit code")
	}
}

func TestGoldenRunExitCodes(t *testing.T) {
	// Clean run: exit 0.
	out, code, err := captureRun(t, []string{"-run", "2PV7", "-machine", "desktop", "-threads", "4"})
	if err != nil || code != exitOK {
		t.Fatalf("clean run: code=%d err=%v", code, err)
	}
	if strings.Contains(out, "resilience:") {
		t.Error("clean run printed a resilience block")
	}
	// Modeled inference budget exceeded: exit 3, typed error.
	_, code, err = captureRun(t, []string{"-run", "2PV7", "-machine", "desktop", "-threads", "4",
		"-stage-budget", "inference=0.01"})
	if code != exitTimeout {
		t.Fatalf("budget timeout: code=%d err=%v", code, err)
	}
	if err == nil || !strings.Contains(err.Error(), "stage inference") {
		t.Errorf("timeout error = %v, want stage inference", err)
	}
	// Single-sequence fallback still counts as degraded success.
	_, code, err = captureRun(t, []string{"-run", "2PV7", "-machine", "desktop", "-threads", "4",
		"-faults", "permanent:*"})
	if err != nil || code != exitDegraded {
		t.Fatalf("single-sequence run: code=%d err=%v", code, err)
	}
	// Flag errors are the generic class.
	_, code, err = captureRun(t, []string{"-run", "2PV7", "-machine", "hal9000"})
	if code != exitError || err == nil {
		t.Fatalf("bad machine: code=%d err=%v", code, err)
	}
	_, code, err = captureRun(t, []string{"-run", "2PV7", "-stage-budget", "warp=9"})
	if code != exitError || err == nil {
		t.Fatalf("bad budget: code=%d err=%v", code, err)
	}
	_, code, err = captureRun(t, []string{"-run", "nosuchsample"})
	if code != exitError || err == nil {
		t.Fatalf("bad sample: code=%d err=%v", code, err)
	}
}
