package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// Golden snapshots for the fully deterministic experiments: the platform
// and sample tables and the Figure 2 memory sweep. These catch accidental
// drift in the encoded paper facts or the render format.

func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", runErr, out)
	}
	return out
}

func TestGoldenFigure2(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-exp", "fig2"}) })
	want := strings.TrimLeft(`
Figure 2: peak memory vs RNA sequence length (nhmmer)
  main memory: 512 GiB; with CXL expansion: 768 GiB
RNA length  peak GiB  server           server+CXL  provenance
----------  --------  ---------------  ----------  ----------------------------------------
621         79.3      OK               OK          measured
935         506.0     NEEDS-EXPANSION  OK          measured
1135        644.0     NEEDS-EXPANSION  OK          measured, required CXL expansion
1335        810.0     OOM              OOM         projected (run OOM-killed above 768 GiB)
`, "\n")
	if out != want {
		t.Errorf("figure 2 output drifted:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

func TestGoldenTable1ContainsPaperFacts(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-exp", "tab1"}) })
	for _, fact := range []string{
		"Intel Xeon Gold 5416S", "16/32", "2.0/4.0 GHz", "30 MiB", "512 GiB", "H100",
		"AMD Ryzen 9 7900X", "12/24", "4.7/5.6 GHz", "64 MiB", "RTX 4080",
	} {
		if !strings.Contains(out, fact) {
			t.Errorf("Table I missing %q", fact)
		}
	}
}

func TestGoldenTable2ContainsSampleFacts(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-exp", "tab2"}) })
	for _, fact := range []string{"2PV7", "484", "7RCE", "306", "1YY9", "881", "promo", "857", "6QNR", "1395", "600"} {
		if !strings.Contains(out, fact) {
			t.Errorf("Table II missing %q", fact)
		}
	}
}

func TestGoldenDeterminism(t *testing.T) {
	a := captureStdout(t, func() error { return run([]string{"-exp", "fig2"}) })
	b := captureStdout(t, func() error { return run([]string{"-exp", "fig2"}) })
	if a != b {
		t.Error("deterministic experiment produced different output across runs")
	}
}
