package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"afsysbench/internal/core"
	"afsysbench/internal/resilience"
)

func TestRunList(t *testing.T) {
	for _, target := range []string{"platforms", "samples"} {
		if err := run([]string{"-list", target}); err != nil {
			t.Errorf("-list %s: %v", target, err)
		}
	}
	if err := run([]string{"-list", "bogus"}); err == nil {
		t.Error("bogus list target accepted")
	}
}

func TestRunRequiresWork(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-op invocation accepted")
	}
}

func TestRunFig2WithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-exp", "fig2", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err != nil {
		t.Errorf("CSV not written: %v", err)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-exp", "fig2", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunBadProfilePath(t *testing.T) {
	if err := run([]string{"-exp", "fig2", "-cpuprofile", "/nonexistent-dir/cpu.pprof"}); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadThreads(t *testing.T) {
	if err := run([]string{"-exp", "fig3", "-threads", "two"}); err == nil {
		t.Error("bad threads value accepted")
	}
}

func TestPick(t *testing.T) {
	got := pick([]string{"2PV7", "6QNR"}, "2PV7", "promo")
	if len(got) != 1 || got[0] != "2PV7" {
		t.Errorf("pick = %v", got)
	}
	got = pick([]string{"6QNR"}, "2PV7", "promo")
	if len(got) != 2 {
		t.Errorf("fallback pick = %v", got)
	}
}

func TestExitCodeClasses(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, exitOK},
		{errors.New("anything"), exitError},
		{core.ErrProjectedOOM{}, exitOOMGate},
		{fmt.Errorf("run: %w", core.ErrProjectedOOM{}), exitOOMGate},
		{resilience.ErrStageTimeout{Stage: "inference"}, exitTimeout},
		{fmt.Errorf("run: %w", resilience.ErrStageTimeout{Stage: "msa", Cause: context.Canceled}), exitTimeout},
		{context.DeadlineExceeded, exitTimeout},
	}
	for _, c := range cases {
		if got := exitCodeFor(c.err); got != c.want {
			t.Errorf("exitCodeFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestParseStageBudget(t *testing.T) {
	b, err := parseStageBudget("msa=3000, inference=400")
	if err != nil || b.MSASeconds != 3000 || b.InferenceSeconds != 400 {
		t.Fatalf("budget = %+v, err = %v", b, err)
	}
	if b, err := parseStageBudget(""); err != nil || b != (resilience.StageBudget{}) {
		t.Errorf("empty spec: %+v, %v", b, err)
	}
	for _, bad := range []string{"msa", "msa=x", "msa=-1", "gpu=5"} {
		if _, err := parseStageBudget(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
