// Command afsysbench runs the AFSysBench-Go benchmark suite: the AlphaFold3
// pipeline reproduction (MSA phase + inference phase) over the paper's
// samples, platforms and thread counts, printing any of the paper's tables
// and figures.
//
// Usage:
//
//	afsysbench -list platforms          # Table I
//	afsysbench -list samples            # Table II
//	afsysbench -exp fig3                # any of fig2..fig9, tab3..tab6, all
//	afsysbench -exp fig4 -samples 2PV7,promo
//	afsysbench -exp fig3 -threads 1,4,8
//	afsysbench -run 2PV7 -machine desktop               # one pipeline run
//	afsysbench -run 2PV7 -faults permanent:uniref_s     # fault injection
//	afsysbench -run 2PV7 -stage-budget msa=3000 -timeout 2m
//
// Exit codes for -run: 0 success, 1 generic error, 2 projected-OOM gate,
// 3 stage timeout (modeled budget or wall-clock -timeout), 4 the run
// finished but degraded (dropped databases or single-sequence fallback).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
	"afsysbench/internal/report"
	"afsysbench/internal/resilience"
)

// Exit codes of the -run mode, one per failure class so schedulers and
// scripts can react without parsing output.
const (
	exitOK       = 0
	exitError    = 1
	exitOOMGate  = 2
	exitTimeout  = 3
	exitDegraded = 4
)

func main() {
	code, err := runCLI(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "afsysbench:", err)
	}
	os.Exit(code)
}

// run preserves the original error-only entry point (experiment paths and
// tests); the exit-code classification lives in runCLI.
func run(args []string) error {
	_, err := runCLI(args)
	return err
}

func runCLI(args []string) (int, error) {
	fs := flag.NewFlagSet("afsysbench", flag.ContinueOnError)
	list := fs.String("list", "", "list 'platforms' (Table I) or 'samples' (Table II)")
	exp := fs.String("exp", "", "experiment id: fig2..fig9, tab3..tab6, or 'all'")
	samplesFlag := fs.String("samples", "", "comma-separated sample subset (default: all five)")
	threadsFlag := fs.String("threads", "", "comma-separated thread counts for fig3 (default 1,2,4,6,8)")
	runs := fs.Int("runs", 3, "repetitions for mean/CV experiments")
	csvDir := fs.String("csv", "", "also write <dir>/<exp>.csv for each experiment")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (compare Go hotspots against metering attribution)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	runSample := fs.String("run", "", "run the end-to-end pipeline for one sample (Table II name) and exit by failure class")
	machine := fs.String("machine", "server", "machine for -run: server, desktop, desktop-upgraded, server-cxl")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for -run (0 = none)")
	stageBudget := fs.String("stage-budget", "", "modeled per-stage budgets for -run, e.g. 'msa=3000,inference=400' (seconds)")
	faultsFlag := fs.String("faults", "", "fault spec for -run, e.g. 'transient:uniref_s:2,permanent:nt_rna_s,stall:120,memspike:40:1'")
	skipMemCheck := fs.Bool("skip-mem-check", false, "disable the projected-OOM gate for -run (stock AF3 behavior)")
	if err := fs.Parse(args); err != nil {
		return exitError, err
	}

	// Real Go-level profiles complement the simulated metering attribution:
	// pprof shows where this process actually burns cycles and bytes, the
	// metering model shows where the modeled paper-scale run would.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return exitError, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return exitError, fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "afsysbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "afsysbench: memprofile:", err)
			}
		}()
	}

	w := os.Stdout
	switch *list {
	case "platforms":
		return exitIf(report.RenderPlatforms(w))
	case "samples":
		return exitIf(report.RenderSamples(w))
	case "":
	default:
		return exitError, fmt.Errorf("unknown -list target %q", *list)
	}
	if *exp == "" && *runSample == "" {
		fs.Usage()
		return exitError, fmt.Errorf("nothing to do: pass -list, -exp or -run")
	}

	samples := core.SampleNames()
	if *samplesFlag != "" {
		samples = strings.Split(*samplesFlag, ",")
	}
	threads := core.MSAThreadSweep
	if *threadsFlag != "" {
		threads = nil
		for _, part := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return exitError, fmt.Errorf("bad -threads value %q: %w", part, err)
			}
			threads = append(threads, n)
		}
	}

	suite, err := core.NewSuite()
	if err != nil {
		return exitError, err
	}
	suite.Runs = *runs

	if *runSample != "" {
		return runSingle(suite, singleRunConfig{
			sample:       *runSample,
			machine:      *machine,
			threads:      threads,
			timeout:      *timeout,
			budgetSpec:   *stageBudget,
			faultsSpec:   *faultsFlag,
			skipMemCheck: *skipMemCheck,
		})
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"tab1", "tab2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "tab3", "tab4", "tab5", "tab6", "batch", "sens"}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := runExperiment(suite, id, samples, threads, *csvDir); err != nil {
			return exitError, fmt.Errorf("%s: %w", id, err)
		}
	}
	return exitOK, nil
}

// exitIf maps a plain error to the generic-failure exit code.
func exitIf(err error) (int, error) {
	if err != nil {
		return exitError, err
	}
	return exitOK, nil
}

// singleRunConfig is the parsed -run flag set.
type singleRunConfig struct {
	sample       string
	machine      string
	threads      []int
	timeout      time.Duration
	budgetSpec   string
	faultsSpec   string
	skipMemCheck bool
}

// runSingle executes one end-to-end pipeline run and classifies the exit.
func runSingle(suite *core.Suite, cfg singleRunConfig) (int, error) {
	in, err := inputs.ByName(cfg.sample)
	if err != nil {
		return exitError, err
	}
	mach, err := machineByName(cfg.machine)
	if err != nil {
		return exitError, err
	}
	budget, err := parseStageBudget(cfg.budgetSpec)
	if err != nil {
		return exitError, err
	}
	faults, err := resilience.ParseFaults(cfg.faultsSpec)
	if err != nil {
		return exitError, err
	}
	threads := 8
	if len(cfg.threads) > 0 && cfg.threads[0] > 0 {
		threads = cfg.threads[0]
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	pr, err := suite.RunPipelineCtx(ctx, in, mach, core.PipelineOptions{
		Threads:      threads,
		Budget:       budget,
		Faults:       faults,
		SkipMemCheck: cfg.skipMemCheck,
	})
	if err != nil {
		return exitCodeFor(err), err
	}
	if err := report.RenderPipelineRun(os.Stdout, pr); err != nil {
		return exitError, err
	}
	if pr.Resilience.Degraded {
		return exitDegraded, nil
	}
	return exitOK, nil
}

// exitCodeFor maps a pipeline error to its failure class.
func exitCodeFor(err error) int {
	if err == nil {
		return exitOK
	}
	var oom core.ErrProjectedOOM
	if errors.As(err, &oom) {
		return exitOOMGate
	}
	var timeout resilience.ErrStageTimeout
	if errors.As(err, &timeout) {
		return exitTimeout
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return exitTimeout
	}
	return exitError
}

// machineByName resolves the -machine flag.
func machineByName(name string) (platform.Machine, error) {
	switch name {
	case "server":
		return platform.Server(), nil
	case "desktop":
		return platform.Desktop(), nil
	case "desktop-upgraded":
		return platform.DesktopUpgraded(), nil
	case "server-cxl":
		return platform.ServerWithCXL(), nil
	default:
		return platform.Machine{}, fmt.Errorf("unknown -machine %q (want server, desktop, desktop-upgraded or server-cxl)", name)
	}
}

// parseStageBudget parses the -stage-budget grammar: comma-separated
// <stage>=<seconds> pairs where stage is msa or inference.
func parseStageBudget(spec string) (resilience.StageBudget, error) {
	var b resilience.StageBudget
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return b, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return b, fmt.Errorf("bad -stage-budget entry %q: want <stage>=<seconds>", part)
		}
		sec, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || sec <= 0 {
			return b, fmt.Errorf("bad -stage-budget seconds in %q", part)
		}
		switch strings.TrimSpace(kv[0]) {
		case "msa":
			b.MSASeconds = sec
		case "inference":
			b.InferenceSeconds = sec
		default:
			return b, fmt.Errorf("unknown -stage-budget stage %q (want msa or inference)", kv[0])
		}
	}
	return b, nil
}

func runExperiment(suite *core.Suite, id string, samples []string, threads []int, csvDir string) error {
	w := os.Stdout
	machines := core.TwoPlatforms()
	emit := func(headers []string, rows [][]string) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, id+".csv"))
		if err != nil {
			return err
		}
		if err := report.CSV(f, headers, rows); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	switch id {
	case "tab1":
		return report.RenderPlatforms(w)
	case "tab2":
		return report.RenderSamples(w)
	case "fig2":
		rows := core.Figure2()
		if err := report.RenderFigure2(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVFigure2(rows)
		return emit(h, rr)
	case "fig3":
		rows, err := suite.Figure3(samples, machines, threads)
		if err != nil {
			return err
		}
		if err := report.RenderFigure3(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVFigure3(rows)
		return emit(h, rr)
	case "fig4":
		rows, err := suite.Figure4(samples, machines)
		if err != nil {
			return err
		}
		if err := report.RenderScaling(w, "Figure 4: MSA execution time across 1-8 threads", rows); err != nil {
			return err
		}
		h, rr := report.CSVScaling(rows)
		return emit(h, rr)
	case "fig5":
		rows, err := suite.Figure5()
		if err != nil {
			return err
		}
		if err := report.RenderScaling(w, "Figure 5: 6QNR thread-level performance and speedup", rows); err != nil {
			return err
		}
		h, rr := report.CSVScaling(rows)
		return emit(h, rr)
	case "fig6":
		rows, err := suite.Figure6(samples, machines)
		if err != nil {
			return err
		}
		if err := report.RenderFigure6(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVFigure6(rows)
		return emit(h, rr)
	case "fig7":
		rows, err := suite.Figure7(samples, machines)
		if err != nil {
			return err
		}
		if err := report.RenderFigure7(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVFigure7(rows)
		return emit(h, rr)
	case "fig8":
		rows, err := suite.Figure8(pick(samples, "2PV7", "1YY9", "promo"), machines)
		if err != nil {
			return err
		}
		if err := report.RenderFigure8(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVFigure8(rows)
		return emit(h, rr)
	case "fig9":
		rows, err := suite.Figure9()
		if err != nil {
			return err
		}
		if err := report.RenderFigure9(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVFigure9(rows)
		return emit(h, rr)
	case "tab3":
		cells, err := suite.Table3(pick(samples, "2PV7", "promo"))
		if err != nil {
			return err
		}
		if err := report.RenderTable3(w, cells); err != nil {
			return err
		}
		h, rr := report.CSVTable3(cells)
		return emit(h, rr)
	case "tab4":
		names := pick(samples, "2PV7", "promo")
		rows, err := suite.Table4(names)
		if err != nil {
			return err
		}
		var cols []string
		for _, n := range names {
			cols = append(cols, n+"/1T", n+"/4T")
		}
		if err := report.RenderTable4(w, rows, cols); err != nil {
			return err
		}
		h, rr := report.CSVTable4(rows)
		return emit(h, rr)
	case "tab5":
		rows, err := suite.Table5(pick(samples, "2PV7", "promo", "6QNR"))
		if err != nil {
			return err
		}
		if err := report.RenderTable5(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVTable5(rows)
		return emit(h, rr)
	case "tab6":
		rows, err := suite.Table6()
		if err != nil {
			return err
		}
		if err := report.RenderTable6(w, rows); err != nil {
			return err
		}
		h, rr := report.CSVTable6(rows)
		return emit(h, rr)
	case "batch":
		return runBatchExperiment(suite, emit)
	case "sens":
		return runSensitivityExperiment(emit)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

// runBatchExperiment prints the deployment-strategy comparison (the §VI
// persistent-model and ParaFold-style pipelining extensions).
// runSensitivityExperiment prints the search engine's homolog-recovery
// curve and decoy false-positive rate (the quality the paper says keeps
// jackhmmer/nhmmer in the pipeline despite their cost).
func runSensitivityExperiment(emit func([]string, [][]string) error) error {
	w := os.Stdout
	fmt.Fprintln(w, "Search sensitivity (extension: engine quality regression)")
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	rep, err := hmmer.EvaluateSensitivity(rates, hmmer.SensitivityOptions{Seed: 1, PerRate: 12, Decoys: 300})
	if err != nil {
		return err
	}
	headers := []string{"divergence", "planted", "recovered", "recovery_pct"}
	var rows [][]string
	for _, p := range rep.Points {
		rows = append(rows, []string{
			report.F2(p.Divergence),
			fmt.Sprint(p.Planted),
			fmt.Sprint(p.Recovered),
			report.F1(100 * p.Recovery()),
		})
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "false positives: %d / %d decoys (%.2f%%) at E <= 1e-3\n",
		rep.FalsePositives, rep.Decoys, 100*rep.FalsePositiveRate())
	return emit(headers, rows)
}

func runBatchExperiment(suite *core.Suite, emit func([]string, [][]string) error) error {
	w := os.Stdout
	fmt.Fprintln(w, "Batch deployment comparison (extension: §VI persistent model + pipelining)")
	queue := []string{"2PV7", "1YY9", "7RCE", "promo", "2PV7", "1YY9", "7RCE", "2PV7"}
	configs := []struct {
		label string
		opts  core.BatchOptions
	}{
		{"sequential-cold", core.BatchOptions{Threads: 6}},
		{"persistent-model", core.BatchOptions{Threads: 6, WarmModel: true}},
		{"pipelined", core.BatchOptions{Threads: 6, Pipelined: true}},
		{"pipelined+persistent", core.BatchOptions{Threads: 6, Pipelined: true, WarmModel: true}},
	}
	headers := []string{"deployment", "makespan_s", "requests_per_hour", "cpu_util_pct", "gpu_util_pct"}
	var rows [][]string
	for _, cfg := range configs {
		res, err := suite.RunBatch(queue, platform.Server(), cfg.opts)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			cfg.label,
			report.F0(res.Makespan),
			report.F1(res.Throughput()),
			report.F1(100 * res.CPUBusy / res.Makespan),
			report.F1(100 * res.GPUBusy / res.Makespan),
		})
	}
	if err := report.Table(w, headers, rows); err != nil {
		return err
	}
	return emit(headers, rows)
}

// pick intersects the user's sample list with the experiment's defaults,
// falling back to the defaults when the intersection is empty.
func pick(samples []string, defaults ...string) []string {
	set := map[string]bool{}
	for _, s := range samples {
		set[s] = true
	}
	var out []string
	for _, d := range defaults {
		if set[d] {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return defaults
	}
	return out
}
