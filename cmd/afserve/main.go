// Command afserve runs the AFSysBench serving subsystem as an HTTP server:
// the phase-split scheduler of internal/serve (separate MSA and inference
// worker pools, bounded admission queue, per-request deadlines) in front
// of the content-addressed MSA cache of internal/cache.
//
// Usage:
//
//	afserve                                  # serve on :8642, defaults
//	afserve -addr :9000 -machine desktop
//	afserve -msa-workers 8 -gpu-workers 1 -queue 128
//	afserve -cache-mb 256                    # bound the MSA cache
//	afserve -cache-mb 0                      # disable the cache
//	afserve -cache-dir /var/cache/af         # persistent chain-cache tier
//	afserve -deadline 30s -cold              # per-request deadline, cold model
//	afserve -msa-attempts 3 -hedge           # checkpointed retries + hedging
//	afserve -batch -max-batch 8              # cross-request GPU batching
//	afserve -qos -tenants 'inter:w=8;storm:w=1,r=400,b=800'
//	                                         # multi-tenant QoS (X-AF-Tenant)
//	afserve -faults transient:uniref_s:1     # inject faults (robustness demos)
//	afserve -breaker-threshold 3 -breaker-cooldown 5s
//
// Endpoints:
//
//	POST /v1/submit     {"sample":"1YY9","threads":4,"timeout_ms":30000}
//	GET  /v1/jobs/{id}  job status (state, cache_hit, stage seconds)
//	GET  /v1/metrics    counters + cache stats + latency percentiles
//	GET  /v1/healthz    liveness: the process answers
//	GET  /v1/readyz     readiness: 503 names open breakers / saturated queue
//
// A full admission queue answers 503 (deterministic load shedding); an
// unknown sample answers 400.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"afsysbench/internal/cache"
	"afsysbench/internal/cachedisk"
	"afsysbench/internal/parallel"
	"afsysbench/internal/platform"
	"afsysbench/internal/qos"
	"afsysbench/internal/resilience"
	"afsysbench/internal/serve"
	"afsysbench/internal/simgpu"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afserve:", err)
		os.Exit(1)
	}
}

// options holds the parsed flag set.
type options struct {
	addr       string
	machine    string
	threads    int
	msaWorkers int
	gpuWorkers int
	queue      int
	cacheMB    int
	cacheDir   string
	deadline   time.Duration
	cold       bool

	faults           string
	msaAttempts      int
	breakerThreshold int
	breakerCooldown  time.Duration
	hedge            bool

	batch        bool
	batchBuckets string
	maxBatch     int

	qos         bool
	tenants     string
	qosDrain    float64
	qosCapacity float64
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("afserve", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8642", "listen address")
	fs.StringVar(&o.machine, "machine", "server", "platform: server, desktop, desktop-upgraded, server-cxl")
	fs.IntVar(&o.threads, "threads", 8, "default per-request thread count")
	fs.IntVar(&o.msaWorkers, "msa-workers", 0, "MSA (CPU) pool size; 0 = one per core")
	fs.IntVar(&o.gpuWorkers, "gpu-workers", 0, "inference (GPU) pool size; 0 = one per modeled device")
	fs.IntVar(&o.queue, "queue", 64, "admission queue depth; a full queue sheds (503)")
	fs.IntVar(&o.cacheMB, "cache-mb", 512, "MSA cache capacity in MiB; 0 disables caching")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "crash-safe persistent chain-cache tier rooted at this directory (needs -cache-mb > 0); survives restarts")
	fs.DurationVar(&o.deadline, "deadline", 0, "default per-request wall deadline (0 = none)")
	fs.BoolVar(&o.cold, "cold", false, "cold model per request (pay GPU init + XLA compile each time)")
	fs.StringVar(&o.faults, "faults", "", "fault spec injected into every request, e.g. transient:uniref_s:1,chainfault:B:1")
	fs.IntVar(&o.msaAttempts, "msa-attempts", 1, "MSA stage attempts per request; >1 enables chain checkpoints, so a retry re-runs only failed chains")
	fs.IntVar(&o.breakerThreshold, "breaker-threshold", 0, "consecutive failures that open a database's circuit breaker (0 = default 5)")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = default 10s)")
	fs.BoolVar(&o.hedge, "hedge", false, "hedge straggling MSA chain searches with a concurrent backup attempt")
	fs.BoolVar(&o.batch, "batch", false, "enable cross-request GPU batching with the shape-bucketed compile cache")
	fs.StringVar(&o.batchBuckets, "batch-buckets", "", "comma-separated shape-bucket boundaries for -batch (empty = stock bucket set)")
	fs.IntVar(&o.maxBatch, "max-batch", 0, "cap members per batched dispatch on top of the memory-footprint cap (0 = memory cap only)")
	fs.BoolVar(&o.qos, "qos", false, "tenant-aware admission: per-tenant token buckets, weighted-fair MSA queueing and the brownout ladder (tenant from the X-AF-Tenant header)")
	fs.StringVar(&o.tenants, "tenants", "", "per-tenant quotas for -qos, e.g. 'inter:w=8;storm:w=1,r=400,b=800' (w= weight, r= chain-tokens/s, b= burst)")
	fs.Float64Var(&o.qosDrain, "qos-drain", 0, "-qos modeled drain rate in chain-tokens per second (0 = stock)")
	fs.Float64Var(&o.qosCapacity, "qos-capacity", 0, "-qos modeled backlog capacity in chain-tokens (0 = stock)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if !o.batch && (o.batchBuckets != "" || o.maxBatch > 0) {
		return o, fmt.Errorf("-batch-buckets and -max-batch need -batch")
	}
	if !o.qos && (o.tenants != "" || o.qosDrain > 0 || o.qosCapacity > 0) {
		return o, fmt.Errorf("-tenants, -qos-drain and -qos-capacity need -qos")
	}
	if o.tenants != "" {
		if _, err := qos.ParseTenantSpec(o.tenants); err != nil {
			return o, err
		}
	}
	if _, err := parseBuckets(o.batchBuckets); err != nil {
		return o, err
	}
	return o, nil
}

// parseBuckets parses a comma-separated ascending bucket list ("" = nil,
// meaning the stock policy).
func parseBuckets(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var buckets []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -batch-buckets entry %q (want positive token counts)", part)
		}
		buckets = append(buckets, n)
	}
	return buckets, nil
}

// buildServer turns the flags into a configured scheduler. Split from run
// so tests can build without binding a socket.
func buildServer(o options) (*serve.Server, error) {
	mach, err := machineByName(o.machine)
	if err != nil {
		return nil, err
	}
	var c *cache.Cache
	if o.cacheMB > 0 {
		c = cache.New(int64(o.cacheMB) << 20)
	}
	var disk *cachedisk.Store
	if o.cacheDir != "" {
		if c == nil {
			return nil, fmt.Errorf("-cache-dir needs the memory tier (-cache-mb > 0)")
		}
		disk, err = cachedisk.Open(cachedisk.Config{Dir: o.cacheDir})
		if err != nil {
			return nil, err
		}
	}
	var faults resilience.Faults
	if o.faults != "" {
		faults, err = resilience.ParseFaults(o.faults)
		if err != nil {
			return nil, err
		}
	}
	buckets, err := parseBuckets(o.batchBuckets)
	if err != nil {
		return nil, err
	}
	var ctrl *qos.Controller
	if o.qos {
		var tenants map[string]qos.TenantConfig
		if o.tenants != "" {
			tenants, err = qos.ParseTenantSpec(o.tenants)
			if err != nil {
				return nil, err
			}
		}
		ctrl = qos.NewController(qos.Config{
			Tenants:           tenants,
			DrainTokensPerSec: o.qosDrain,
			CapacityTokens:    o.qosCapacity,
		})
	}
	return serve.New(serve.Config{
		Machine:          mach,
		Threads:          o.threads,
		MSAWorkers:       o.msaWorkers,
		GPUWorkers:       o.gpuWorkers,
		QueueDepth:       o.queue,
		Cache:            c,
		DiskCache:        disk,
		DefaultTimeout:   o.deadline,
		ColdModel:        o.cold,
		Faults:           faults,
		MSAAttempts:      o.msaAttempts,
		BreakerThreshold: o.breakerThreshold,
		BreakerCooldown:  o.breakerCooldown,
		Hedge:            serve.HedgeConfig{Enabled: o.hedge},
		Batch:            serve.BatchConfig{Enabled: o.batch, Buckets: buckets, MaxBatch: o.maxBatch},
		QoS:              ctrl,
	})
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	s, err := buildServer(o)
	if err != nil {
		return err
	}
	s.Start()
	defer s.Stop()
	cfg := s.Config()
	cacheDesc := "disabled"
	if cfg.Cache != nil {
		cacheDesc = fmt.Sprintf("%d MiB", o.cacheMB)
		if cfg.DiskCache != nil {
			cacheDesc += fmt.Sprintf(" + disk tier %s (%d entries)", cfg.DiskCache.Dir(), cfg.DiskCache.Len())
		}
	}
	fmt.Printf("afserve: %s on %s | %d msa workers (cores %d), %d gpu workers (devices %d), queue %d, cache %s\n",
		cfg.Machine.Name, o.addr, cfg.MSAWorkers, parallel.DefaultWorkers(),
		cfg.GPUWorkers, simgpu.Devices(cfg.Machine), cfg.QueueDepth, cacheDesc)
	return http.ListenAndServe(o.addr, serve.NewHandler(s))
}

// machineByName resolves the -machine flag.
func machineByName(name string) (platform.Machine, error) {
	switch name {
	case "server":
		return platform.Server(), nil
	case "desktop":
		return platform.Desktop(), nil
	case "desktop-upgraded":
		return platform.DesktopUpgraded(), nil
	case "server-cxl":
		return platform.ServerWithCXL(), nil
	default:
		return platform.Machine{}, fmt.Errorf("unknown -machine %q (want server, desktop, desktop-upgraded or server-cxl)", name)
	}
}
