package main

import (
	"testing"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", ":9000", "-machine", "desktop", "-cache-mb", "64", "-queue", "8", "-deadline", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9000" || o.machine != "desktop" || o.cacheMB != 64 || o.queue != 8 || o.deadline.Seconds() != 30 {
		t.Fatalf("options = %+v", o)
	}
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestBuildServer(t *testing.T) {
	o, err := parseFlags([]string{"-machine", "desktop", "-msa-workers", "3", "-gpu-workers", "2", "-cache-mb", "64"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	cfg := s.Config()
	if cfg.Machine.Name != "Desktop" || cfg.MSAWorkers != 3 || cfg.GPUWorkers != 2 {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.Cache == nil {
		t.Fatal("cache not built")
	}
	if st := cfg.Cache.Stats(); st.CapacityBytes != 64<<20 {
		t.Fatalf("cache capacity = %d", st.CapacityBytes)
	}

	// cache-mb 0 disables the cache entirely.
	o.cacheMB = 0
	s2, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if s2.Config().Cache != nil {
		t.Fatal("cache-mb 0 still built a cache")
	}

	o.machine = "laptop"
	if _, err := buildServer(o); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestQoSFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-tenants", "a:w=2"}); err == nil {
		t.Fatal("-tenants without -qos accepted")
	}
	if _, err := parseFlags([]string{"-qos-drain", "100"}); err == nil {
		t.Fatal("-qos-drain without -qos accepted")
	}
	if _, err := parseFlags([]string{"-qos", "-tenants", "a:nope=2"}); err == nil {
		t.Fatal("bad tenant spec accepted")
	}
	o, err := parseFlags([]string{"-qos", "-tenants", "inter:w=8;storm:w=1,r=400,b=800", "-qos-drain", "500", "-qos-capacity", "4000"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	ctrl := s.Config().QoS
	if ctrl == nil {
		t.Fatal("-qos did not attach a controller")
	}
	qcfg := ctrl.Config()
	if qcfg.DrainTokensPerSec != 500 || qcfg.CapacityTokens != 4000 {
		t.Fatalf("controller config = %+v", qcfg)
	}
	if qcfg.Tenants["inter"].Weight != 8 || qcfg.Tenants["storm"].Rate != 400 {
		t.Fatalf("tenant quotas = %+v", qcfg.Tenants)
	}
}
