package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: afsysbench/internal/hmmer
cpu: Intel(R) Xeon(R)
BenchmarkScanProtein/reference 	      54	  44625962 ns/op	 1461356 B/op	    9974 allocs/op
BenchmarkScanProtein/optimized 	     151	  17105612 ns/op	 1154687 B/op	    9674 allocs/op
BenchmarkScanRecordSteadyState 	   66019	     17510 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	afsysbench/internal/hmmer	48.095s
`

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkScanProtein/optimized 	 151 	 17105612 ns/op 	 1154687 B/op 	 9674 allocs/op")
	if !ok {
		t.Fatal("result line not parsed")
	}
	if e.Name != "BenchmarkScanProtein/optimized" || e.Iterations != 151 ||
		e.NsPerOp != 17105612 || e.BytesPerOp != 1154687 || e.AllocsPerOp != 9674 {
		t.Errorf("parsed %+v", e)
	}
	for _, bad := range []string{"PASS", "ok  	pkg	1.2s", "goos: linux", "BenchmarkBroken x y"} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("non-result line parsed: %q", bad)
		}
	}
}

func TestRunWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_msa.json")
	sc := bufio.NewScanner(strings.NewReader(sample))
	if err := run(sc, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(art.Entries))
	}
	if art.Entries[2].AllocsPerOp != 0 || art.Entries[2].NsPerOp != 17510 {
		t.Errorf("steady-state entry: %+v", art.Entries[2])
	}
	// The benchstat extract keeps context headers and results, drops the rest.
	if !strings.Contains(art.Benchstat, "pkg: afsysbench/internal/hmmer") ||
		!strings.Contains(art.Benchstat, "BenchmarkScanProtein/reference") {
		t.Errorf("benchstat extract incomplete:\n%s", art.Benchstat)
	}
	if strings.Contains(art.Benchstat, "PASS") {
		t.Error("benchstat extract kept non-benchmark lines")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	sc := bufio.NewScanner(strings.NewReader("PASS\n"))
	if err := run(sc, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("empty benchmark input accepted")
	}
}
