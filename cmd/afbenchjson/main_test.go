package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: afsysbench/internal/hmmer
cpu: Intel(R) Xeon(R)
BenchmarkScanProtein/reference 	      54	  44625962 ns/op	 1461356 B/op	    9974 allocs/op
BenchmarkScanProtein/optimized 	     151	  17105612 ns/op	 1154687 B/op	    9674 allocs/op
BenchmarkScanProtein/swar-8 	     301	   8552806 ns/op	 1154687 B/op	    9674 allocs/op
BenchmarkScanRecordSteadyState 	   66019	     17510 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	afsysbench/internal/hmmer	48.095s
`

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkScanProtein/optimized 	 151 	 17105612 ns/op 	 1154687 B/op 	 9674 allocs/op")
	if !ok {
		t.Fatal("result line not parsed")
	}
	if e.Name != "BenchmarkScanProtein/optimized" || e.Iterations != 151 ||
		e.NsPerOp != 17105612 || e.BytesPerOp != 1154687 || e.AllocsPerOp != 9674 {
		t.Errorf("parsed %+v", e)
	}
	for _, bad := range []string{"PASS", "ok  	pkg	1.2s", "goos: linux", "BenchmarkBroken x y"} {
		if _, ok := parseLine(bad); ok {
			t.Errorf("non-result line parsed: %q", bad)
		}
	}
}

func TestRunWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_msa.json")
	sc := bufio.NewScanner(strings.NewReader(sample))
	if err := run(sc, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Entries) != 4 {
		t.Fatalf("parsed %d entries, want 4", len(art.Entries))
	}
	if art.Entries[3].AllocsPerOp != 0 || art.Entries[3].NsPerOp != 17510 {
		t.Errorf("steady-state entry: %+v", art.Entries[3])
	}
	if art.Entries[0].Variant != "reference" || art.Entries[2].Variant != "swar" ||
		art.Entries[3].Variant != "" {
		t.Errorf("variant labels: %q %q %q",
			art.Entries[0].Variant, art.Entries[2].Variant, art.Entries[3].Variant)
	}
	if art.Env.GOOS != "linux" || art.Env.GOARCH != "amd64" ||
		art.Env.CPU != "Intel(R) Xeon(R)" || art.Env.SWARLaneWidth != 8 {
		t.Errorf("env block: %+v", art.Env)
	}
	if len(art.Speedup) != 1 {
		t.Fatalf("speedup blocks: %+v", art.Speedup)
	}
	sp := art.Speedup[0]
	if sp.Benchmark != "BenchmarkScanProtein" ||
		sp.ReferenceNsPerOp != 44625962 || sp.SWARNsPerOp != 8552806 {
		t.Errorf("speedup block: %+v", sp)
	}
	if sp.SWARVsOptimized < 1.99 || sp.SWARVsOptimized > 2.01 ||
		sp.SWARVsReference < 5.2 || sp.SWARVsReference > 5.3 ||
		sp.OptimizedVsReference < 2.6 || sp.OptimizedVsReference > 2.61 {
		t.Errorf("speedup ratios: %+v", sp)
	}
	// The benchstat extract keeps context headers and results, drops the rest.
	if !strings.Contains(art.Benchstat, "pkg: afsysbench/internal/hmmer") ||
		!strings.Contains(art.Benchstat, "BenchmarkScanProtein/reference") {
		t.Errorf("benchstat extract incomplete:\n%s", art.Benchstat)
	}
	if strings.Contains(art.Benchstat, "PASS") {
		t.Error("benchstat extract kept non-benchmark lines")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	sc := bufio.NewScanner(strings.NewReader("PASS\n"))
	if err := run(sc, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("empty benchmark input accepted")
	}
}
