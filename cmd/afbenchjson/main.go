// Command afbenchjson converts `go test -bench` text output (read from
// stdin) into a small JSON artifact. The artifact keeps the raw benchmark
// lines verbatim in a "benchstat" field — so `benchstat` can be pointed at
// the extracted text for A/B comparison — alongside parsed per-benchmark
// entries for dashboards and the repo's BENCH_*.json conventions.
//
// Usage:
//
//	go test -bench Scan -benchmem ./internal/hmmer | afbenchjson -o BENCH_msa.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Artifact is the emitted JSON document.
type Artifact struct {
	// Benchstat holds the benchmark-format lines (goos/goarch/pkg/cpu
	// headers plus Benchmark... results) exactly as Go printed them, ready
	// to be fed to benchstat.
	Benchstat string  `json:"benchstat"`
	Entries   []Entry `json:"entries"`
}

// parseLine parses one "BenchmarkX-8  123  456 ns/op [789 B/op  12 allocs/op]"
// line; ok is false for non-benchmark lines.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

// benchstatLine reports whether a line belongs in the benchstat-compatible
// extract: result lines plus the context headers benchstat keys on.
func benchstatLine(line string) bool {
	t := strings.TrimSpace(line)
	return strings.HasPrefix(t, "Benchmark") ||
		strings.HasPrefix(t, "goos:") || strings.HasPrefix(t, "goarch:") ||
		strings.HasPrefix(t, "pkg:") || strings.HasPrefix(t, "cpu:")
}

func run(in *bufio.Scanner, outPath string) error {
	var art Artifact
	var raw strings.Builder
	for in.Scan() {
		line := in.Text()
		fmt.Println(line) // pass through so the make target stays readable
		if benchstatLine(line) {
			raw.WriteString(line)
			raw.WriteByte('\n')
		}
		if e, ok := parseLine(line); ok {
			art.Entries = append(art.Entries, e)
		}
	}
	if err := in.Err(); err != nil {
		return err
	}
	if len(art.Entries) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	art.Benchstat = raw.String()
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON path")
	flag.Parse()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if err := run(sc, *out); err != nil {
		fmt.Fprintln(os.Stderr, "afbenchjson:", err)
		os.Exit(1)
	}
}
