// Command afbenchjson converts `go test -bench` text output (read from
// stdin) into a small JSON artifact. The artifact keeps the raw benchmark
// lines verbatim in a "benchstat" field — so `benchstat` can be pointed at
// the extracted text for A/B comparison — alongside parsed per-benchmark
// entries for dashboards and the repo's BENCH_*.json conventions.
//
// Usage:
//
//	go test -bench Scan -benchmem ./internal/hmmer | afbenchjson -o BENCH_msa.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Variant labels the kernel arm for the repo's A/B/C scan benchmarks:
	// "reference" (pre-optimization float kernels), "optimized" (float
	// cascade, SWAR off), or "swar" (8-bit SWAR pre-passes armed).
	Variant     string  `json:"kernel_variant,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Env captures where the numbers were measured, parsed from the benchmark
// context headers, plus the SWAR lane geometry baked into the binary.
type Env struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// SWARLaneWidth is the number of saturating 8-bit lanes per packed word
	// in the SWAR kernels (8 lanes in a uint64).
	SWARLaneWidth int `json:"swar_lane_width"`
}

// Speedup summarizes one benchmark family's kernel-variant ratios.
type Speedup struct {
	Benchmark            string  `json:"benchmark"`
	ReferenceNsPerOp     float64 `json:"reference_ns_per_op,omitempty"`
	OptimizedNsPerOp     float64 `json:"optimized_ns_per_op,omitempty"`
	SWARNsPerOp          float64 `json:"swar_ns_per_op,omitempty"`
	OptimizedVsReference float64 `json:"optimized_vs_reference,omitempty"`
	SWARVsReference      float64 `json:"swar_vs_reference,omitempty"`
	SWARVsOptimized      float64 `json:"swar_vs_optimized,omitempty"`
}

// Artifact is the emitted JSON document.
type Artifact struct {
	// Benchstat holds the benchmark-format lines (goos/goarch/pkg/cpu
	// headers plus Benchmark... results) exactly as Go printed them, ready
	// to be fed to benchstat.
	Benchstat string  `json:"benchstat"`
	Env       Env     `json:"env"`
	Entries   []Entry `json:"entries"`
	// Speedup compares the kernel variants of each benchmark that ran more
	// than one arm (ratios are ns/op quotients, higher = faster than the
	// denominator arm).
	Speedup []Speedup `json:"speedup,omitempty"`
}

// variantOf extracts the kernel-variant leaf of a benchmark name, tolerating
// the -GOMAXPROCS suffix go test appends ("BenchmarkScanProtein/swar-8").
func variantOf(name string) (base, variant string) {
	i := strings.LastIndexByte(name, '/')
	if i < 0 {
		return name, ""
	}
	leaf := name[i+1:]
	if j := strings.LastIndexByte(leaf, '-'); j > 0 {
		if _, err := strconv.Atoi(leaf[j+1:]); err == nil {
			leaf = leaf[:j]
		}
	}
	switch leaf {
	case "reference", "optimized", "swar":
		return name[:i], leaf
	}
	return name, ""
}

// speedups builds the per-family variant comparison from the parsed entries.
func speedups(entries []Entry) []Speedup {
	byBase := map[string]*Speedup{}
	var order []string
	for _, e := range entries {
		if e.Variant == "" {
			continue
		}
		base, _ := variantOf(e.Name)
		s := byBase[base]
		if s == nil {
			s = &Speedup{Benchmark: base}
			byBase[base] = s
			order = append(order, base)
		}
		switch e.Variant {
		case "reference":
			s.ReferenceNsPerOp = e.NsPerOp
		case "optimized":
			s.OptimizedNsPerOp = e.NsPerOp
		case "swar":
			s.SWARNsPerOp = e.NsPerOp
		}
	}
	var out []Speedup
	for _, base := range order {
		s := byBase[base]
		if s.ReferenceNsPerOp > 0 && s.OptimizedNsPerOp > 0 {
			s.OptimizedVsReference = s.ReferenceNsPerOp / s.OptimizedNsPerOp
		}
		if s.ReferenceNsPerOp > 0 && s.SWARNsPerOp > 0 {
			s.SWARVsReference = s.ReferenceNsPerOp / s.SWARNsPerOp
		}
		if s.OptimizedNsPerOp > 0 && s.SWARNsPerOp > 0 {
			s.SWARVsOptimized = s.OptimizedNsPerOp / s.SWARNsPerOp
		}
		out = append(out, *s)
	}
	return out
}

// parseLine parses one "BenchmarkX-8  123  456 ns/op [789 B/op  12 allocs/op]"
// line; ok is false for non-benchmark lines.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters}
	_, e.Variant = variantOf(fields[0])
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	return e, true
}

// benchstatLine reports whether a line belongs in the benchstat-compatible
// extract: result lines plus the context headers benchstat keys on.
func benchstatLine(line string) bool {
	t := strings.TrimSpace(line)
	return strings.HasPrefix(t, "Benchmark") ||
		strings.HasPrefix(t, "goos:") || strings.HasPrefix(t, "goarch:") ||
		strings.HasPrefix(t, "pkg:") || strings.HasPrefix(t, "cpu:")
}

func run(in *bufio.Scanner, outPath string) error {
	art := Artifact{Env: Env{SWARLaneWidth: 8}}
	var raw strings.Builder
	for in.Scan() {
		line := in.Text()
		fmt.Println(line) // pass through so the make target stays readable
		if benchstatLine(line) {
			raw.WriteString(line)
			raw.WriteByte('\n')
			t := strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(t, "goos:"):
				art.Env.GOOS = strings.TrimSpace(t[len("goos:"):])
			case strings.HasPrefix(t, "goarch:"):
				art.Env.GOARCH = strings.TrimSpace(t[len("goarch:"):])
			case strings.HasPrefix(t, "cpu:"):
				art.Env.CPU = strings.TrimSpace(t[len("cpu:"):])
			}
		}
		if e, ok := parseLine(line); ok {
			art.Entries = append(art.Entries, e)
		}
	}
	if err := in.Err(); err != nil {
		return err
	}
	if len(art.Entries) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	art.Benchstat = raw.String()
	art.Speedup = speedups(art.Entries)
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON path")
	flag.Parse()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if err := run(sc, *out); err != nil {
		fmt.Fprintln(os.Stderr, "afbenchjson:", err)
		os.Exit(1)
	}
}
