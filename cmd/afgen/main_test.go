package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-seqs", "20"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		filepath.Join(dir, "db", "uniref_s.afdb"),
		filepath.Join(dir, "db", "rfam_s.afdb"),
		filepath.Join(dir, "inputs", "2PV7.json"),
		filepath.Join(dir, "inputs", "6QNR.fasta"),
		filepath.Join(dir, "inputs", "7K00_rna1335.json"),
	} {
		if fi, err := os.Stat(want); err != nil || fi.Size() == 0 {
			t.Errorf("artifact %s missing or empty: %v", want, err)
		}
	}
}

func TestRunBadSeqs(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-seqs", "0"}); err == nil {
		t.Error("zero records accepted")
	}
}
