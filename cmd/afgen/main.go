// Command afgen materializes the suite's synthetic artifacts to disk: the
// reference sequence databases (binary format) and the Table II input
// samples (AF3 JSON plus FASTA) — useful for inspecting what the searches
// run against or for feeding external tools.
//
// Usage:
//
//	afgen -out ./data
//	afgen -out ./data -seqs 500    # larger synthetic databases
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"afsysbench/internal/inputs"
	"afsysbench/internal/msa"
	"afsysbench/internal/seq"
	"afsysbench/internal/seqdb"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afgen", flag.ContinueOnError)
	out := fs.String("out", "afsysbench-data", "output directory")
	seqs := fs.Int("seqs", msa.DefaultDBConfig().SeqsPerDB, "records per synthetic database")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(filepath.Join(*out, "db"), 0o755); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Join(*out, "inputs"), 0o755); err != nil {
		return err
	}

	cfg := msa.DefaultDBConfig()
	cfg.SeqsPerDB = *seqs
	dbs, err := msa.BuildDBSet(inputs.Samples(), cfg)
	if err != nil {
		return err
	}
	for _, db := range append(append([]*seqdb.DB{}, dbs.Protein...), dbs.RNA...) {
		if err := writeDB(*out, db); err != nil {
			return err
		}
	}

	for _, in := range append(inputs.Samples(), inputs.RNASweep()...) {
		jsonPath := filepath.Join(*out, "inputs", in.Name+".json")
		if err := writeFile(jsonPath, func(f *os.File) error { return in.Write(f) }); err != nil {
			return err
		}
		var chains []*seq.Sequence
		for _, c := range in.Chains {
			chains = append(chains, c.Sequence)
		}
		fastaPath := filepath.Join(*out, "inputs", in.Name+".fasta")
		if err := writeFile(fastaPath, func(f *os.File) error { return seq.WriteFASTA(f, chains) }); err != nil {
			return err
		}
		fmt.Printf("wrote %s (+.fasta)\n", jsonPath)
	}
	return nil
}

func writeDB(out string, db *seqdb.DB) error {
	path := filepath.Join(out, "db", db.Name+".afdb")
	if err := writeFile(path, func(f *os.File) error { return db.Write(f) }); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d records, models %.1f GiB)\n", path, db.NumSeqs(), float64(db.ModeledBytes())/(1<<30))
	return nil
}

// writeFile creates path and streams content through fn, closing cleanly.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
