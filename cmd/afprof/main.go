// Command afprof prints perf-report-style function-level profiles from the
// simulated pipeline — the suite's analog of the paper's perf/uProf/nsys
// workflow.
//
// Usage:
//
//	afprof -sample 2PV7 -machine Server -threads 4            # MSA profile
//	afprof -sample 2PV7 -machine Server -compare              # 1T vs 4T (Table IV)
//	afprof -sample promo -machine Server -phase inference     # host init/compile (Table V)
//	afprof -sample 2PV7 -machine Desktop -phase timeline      # nsys-style timeline (Fig. 8)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"afsysbench/internal/core"
	"afsysbench/internal/hmmer"
	"afsysbench/internal/inputs"
	"afsysbench/internal/msa"
	"afsysbench/internal/platform"
	"afsysbench/internal/profile"
	"afsysbench/internal/seq"
	"afsysbench/internal/simhw"
	"afsysbench/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afprof:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afprof", flag.ContinueOnError)
	sample := fs.String("sample", "2PV7", "Table II sample name")
	machineName := fs.String("machine", "Server", "platform name (Server, Desktop, ...)")
	threads := fs.Int("threads", 4, "thread count")
	phase := fs.String("phase", "msa", "msa | inference | timeline | layers | hits")
	compare := fs.Bool("compare", false, "compare 1T vs 4T side by side (Table IV layout)")
	metricName := fs.String("metric", "cycles", "cycles | cache-misses | dTLB | page-faults | branches")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in, err := inputs.ByName(*sample)
	if err != nil {
		return err
	}
	mach, err := platform.ByName(*machineName)
	if err != nil {
		return err
	}
	metric, err := parseMetric(*metricName)
	if err != nil {
		return err
	}
	suite, err := core.NewSuite()
	if err != nil {
		return err
	}
	w := os.Stdout

	switch *phase {
	case "msa":
		if *compare {
			p1, err := msaProfile(suite, in, mach, 1)
			if err != nil {
				return err
			}
			p4, err := msaProfile(suite, in, mach, 4)
			if err != nil {
				return err
			}
			title := fmt.Sprintf("%s MSA phase on %s", in.Name, mach.Name)
			if err := profile.Compare(w, title, profile.Cycles, [2]string{"1T", "4T"}, [2]map[string]simhw.Counters{p1, p4}, 1); err != nil {
				return err
			}
			return profile.Compare(w, title, profile.CacheMisses, [2]string{"1T", "4T"}, [2]map[string]simhw.Counters{p1, p4}, 1)
		}
		res, err := suite.MSAResult(in, *threads)
		if err != nil {
			return err
		}
		sim := simhw.Simulate(msa.BuildRunSpec(mach, res))
		title := fmt.Sprintf("%s MSA phase on %s, %d threads", in.Name, mach.Name, *threads)
		if err := profile.Stat(w, title, sim.Aggregate, sim.Seconds); err != nil {
			return err
		}
		return profile.Write(w, title, sim.PerFunc, metric, 0.5)
	case "inference":
		host, err := suite.CompileSim(mach, in.TotalResidues())
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%s inference host profile on %s", in.Name, mach.Name)
		for _, m := range []profile.Metric{profile.Cycles, profile.PageFaults, profile.TLBMisses, profile.CacheMisses} {
			if err := profile.Write(w, title, host.Sim.PerFunc, m, 0.5); err != nil {
				return err
			}
		}
		return nil
	case "layers":
		n := in.TotalResidues()
		spill := suite.Model.MemoryFootprintBytes(n) > mach.GPU.MemBytes
		layers := suite.Model.LayerTimes(mach, n, spill)
		tl := trace.FromLayers(fmt.Sprintf("%s GPU compute layers on %s", in.Name, mach.Name), layers)
		return tl.Render(w, 60)
	case "hits":
		return showHits(w, suite, in)
	case "timeline":
		pb, err := suite.InferenceOnly(in, mach, false)
		if err != nil {
			return err
		}
		tl := trace.FromInference(fmt.Sprintf("%s inference on %s", in.Name, mach.Name), pb)
		return tl.Render(w, 60)
	default:
		return fmt.Errorf("unknown phase %q", *phase)
	}
}

// showHits searches the sample's first MSA chain against its primary
// database and renders the top alignments (the traceback's human-readable
// face).
func showHits(w io.Writer, suite *core.Suite, in *inputs.Input) error {
	chains := in.MSAChains()
	if len(chains) == 0 {
		return fmt.Errorf("sample %s has no MSA-searched chains", in.Name)
	}
	query := chains[0].Sequence
	dbList := suite.DBs.For(query.Type)
	if len(dbList) == 0 {
		return fmt.Errorf("no databases for %v", query.Type)
	}
	db := dbList[0]
	search := func() (res *hmmer.Result, err error) {
		src := func() hmmer.RecordSource { return &hmmer.SliceSource{Seqs: db.Seqs} }
		if query.Type == seq.Protein {
			return hmmer.SearchProtein(query, src, db.TotalResidues(), hmmer.SearchOptions{Iterations: 1}, nil)
		}
		return hmmer.SearchNucleotide(query, src, db.TotalResidues(), hmmer.SearchOptions{}, nil)
	}
	res, err := search()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s chain %s vs %s: %d records scanned, %d hits\n\n",
		in.Name, chains[0].IDs[0], db.Name, res.Scanned, len(res.Hits))
	shown := 0
	for _, h := range res.Hits {
		if shown == 3 {
			break
		}
		fmt.Fprintln(w, h.Summary(query))
		if h.Alignment != nil && len(h.Alignment.Pairs) > 0 {
			if err := hmmer.RenderAlignment(w, query, h.Target, h.Alignment, 60); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(w, "no significant hits")
	}
	return nil
}

func msaProfile(suite *core.Suite, in *inputs.Input, mach platform.Machine, threads int) (map[string]simhw.Counters, error) {
	res, err := suite.MSAResult(in, threads)
	if err != nil {
		return nil, err
	}
	sim := simhw.Simulate(msa.BuildRunSpec(mach, res))
	return sim.PerFunc, nil
}

func parseMetric(name string) (profile.Metric, error) {
	switch name {
	case "cycles":
		return profile.Cycles, nil
	case "instructions":
		return profile.Instructions, nil
	case "cache-misses":
		return profile.CacheMisses, nil
	case "dTLB":
		return profile.TLBMisses, nil
	case "page-faults":
		return profile.PageFaults, nil
	case "branches":
		return profile.BranchMisses, nil
	default:
		return 0, fmt.Errorf("unknown metric %q", name)
	}
}
