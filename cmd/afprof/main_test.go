package main

import "testing"

func TestRunMSAProfile(t *testing.T) {
	if err := run([]string{"-sample", "2PV7", "-machine", "Server", "-threads", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := run([]string{"-sample", "2PV7", "-machine", "Server", "-compare"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeline(t *testing.T) {
	if err := run([]string{"-sample", "2PV7", "-machine", "Desktop", "-phase", "timeline"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInferencePhase(t *testing.T) {
	if err := run([]string{"-sample", "2PV7", "-machine", "Server", "-phase", "inference"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-sample", "nope"}); err == nil {
		t.Error("unknown sample accepted")
	}
	if err := run([]string{"-sample", "2PV7", "-machine", "Cray"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run([]string{"-sample", "2PV7", "-phase", "bogus"}); err == nil {
		t.Error("unknown phase accepted")
	}
	if err := run([]string{"-sample", "2PV7", "-metric", "bogus"}); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestRunHits(t *testing.T) {
	if err := run([]string{"-sample", "2PV7", "-phase", "hits"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLayers(t *testing.T) {
	if err := run([]string{"-sample", "2PV7", "-machine", "Server", "-phase", "layers"}); err != nil {
		t.Fatal(err)
	}
}
