package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSample(t *testing.T) {
	if err := run([]string{"-sample", "6QNR"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMaxRNA(t *testing.T) {
	if err := run([]string{"-max-rna"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.json")
	content := `{"name":"mini","modelSeeds":[1],"sequences":[{"protein":{"id":["A"],"sequence":"ACDEFGHIKLMNPQRSTVWY"}}]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-sample", "nope"}); err == nil {
		t.Error("unknown sample accepted")
	}
	if err := run([]string{"-input", "/does/not/exist.json"}); err == nil {
		t.Error("missing file accepted")
	}
}
