// Command afmemest is the static memory pre-check the paper proposes in
// Section VI: it projects the MSA stage's peak memory from input features
// (longest RNA chain, protein length, thread count) and reports whether the
// run fits each platform — before any compute is spent. Stock AlphaFold3
// performs no such check and dies in the OOM killer.
//
// Usage:
//
//	afmemest -sample 6QNR
//	afmemest -input my_assembly.json -threads 8
//	afmemest -max-rna          # longest safe RNA chain per platform
package main

import (
	"flag"
	"fmt"
	"os"

	"afsysbench/internal/inputs"
	"afsysbench/internal/memest"
	"afsysbench/internal/platform"
	"afsysbench/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "afmemest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("afmemest", flag.ContinueOnError)
	sample := fs.String("sample", "", "Table II sample name")
	inputPath := fs.String("input", "", "AF3 JSON input file")
	threads := fs.Int("threads", 8, "MSA thread count (protein memory scales with it)")
	maxRNA := fs.Bool("max-rna", false, "print the longest safe RNA chain per platform")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := os.Stdout

	if *maxRNA {
		var rows [][]string
		for _, m := range platform.All() {
			rows = append(rows, []string{
				m.Name,
				fmt.Sprintf("%d GiB", m.TotalMemBytes()>>30),
				fmt.Sprint(memest.MaxSafeRNALength(m)),
			})
		}
		return report.Table(w, []string{"machine", "memory", "max safe RNA length"}, rows)
	}

	var in *inputs.Input
	var err error
	switch {
	case *sample != "":
		in, err = inputs.ByName(*sample)
	case *inputPath != "":
		var f *os.File
		f, err = os.Open(*inputPath)
		if err == nil {
			defer f.Close()
			in, err = inputs.Read(f)
		}
	default:
		return fmt.Errorf("pass -sample, -input, or -max-rna")
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "input %s: %d chains, %d residues, longest RNA %d, longest protein %d\n",
		in.Name, in.ChainCount(), in.TotalResidues(), in.MaxRNALength(), in.MaxProteinLength())
	var rows [][]string
	for _, m := range platform.All() {
		est := memest.Check(in, m, *threads)
		gpu := memest.GPUCheck(in, m)
		rows = append(rows, []string{
			m.Name,
			fmt.Sprintf("%d GiB", m.TotalMemBytes()>>30),
			fmt.Sprintf("%.1f GiB", float64(est.PeakBytes)/(1<<30)),
			est.Verdict.String(),
			fmt.Sprintf("%.1f GiB", float64(gpu.TotalBytes)/(1<<30)),
			gpu.Verdict.String(),
		})
	}
	if err := report.Table(w, []string{"machine", "memory", "projected peak", "verdict", "GPU footprint", "GPU verdict"}, rows); err != nil {
		return err
	}
	for _, m := range platform.All() {
		if est := memest.Check(in, m, *threads); est.Verdict == memest.OOM {
			fmt.Fprintf(w, "warning: %s would be OOM-killed on %s — do not launch\n", in.Name, m.Name)
		}
	}
	return nil
}
