// Command afcalib prints the raw simulated numbers behind every paper
// artifact — the calibration matrix maintainers check after touching any
// machine-model constant. It sweeps the Table II samples across both
// platforms and 1–8 threads, printing simulated MSA seconds, speedups and
// the Table III counters per cell.
//
// Usage:
//
//	afcalib                      # full matrix
//	afcalib -samples 2PV7,promo  # subset
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"afsysbench/internal/inputs"
	"afsysbench/internal/msa"
	"afsysbench/internal/platform"
	"afsysbench/internal/simhw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "afcalib:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("afcalib", flag.ContinueOnError)
	samplesFlag := fs.String("samples", "2PV7,1YY9,promo,6QNR", "samples to sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*samplesFlag, ",")
	return sweep(w, names, []int{1, 2, 4, 6, 8})
}

// sweep prints the calibration matrix for the given samples and thread
// counts.
func sweep(w io.Writer, names []string, threads []int) error {
	dbs, err := msa.BuildDBSet(inputs.Samples(), msa.DefaultDBConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "DB modeled total: %.1f GiB\n", float64(dbs.ModeledBytes())/(1<<30))

	for _, name := range names {
		in, err := inputs.ByName(name)
		if err != nil {
			return err
		}
		r1, err := msa.Run(in, msa.Options{Threads: 1, DBs: dbs})
		if err != nil {
			return err
		}
		cand := 0
		for _, c := range r1.PerChain {
			cand += c.Candidates
		}
		fmt.Fprintf(w, "\n=== %s (N=%d) cand=%d hitRes=%d paired=%d ===\n",
			name, in.TotalResidues(), cand, r1.TotalHitResidues, len(r1.Pairing.Rows))
		for _, mach := range []platform.Machine{platform.Server(), platform.Desktop()} {
			fmt.Fprintf(w, "%-8s:", mach.Name)
			var t1 float64
			for _, t := range threads {
				res, err := msa.Run(in, msa.Options{Threads: t, DBs: dbs})
				if err != nil {
					return err
				}
				sim := simhw.Simulate(msa.BuildRunSpec(mach, res))
				if t == threads[0] {
					t1 = sim.Seconds
				}
				fmt.Fprintf(w, "  %dT=%6.1fs(x%.2f)", t, sim.Seconds, t1/sim.Seconds)
			}
			fmt.Fprintln(w)
			for _, t := range []int{1, 4, 6} {
				res, err := msa.Run(in, msa.Options{Threads: t, DBs: dbs})
				if err != nil {
					return err
				}
				sim := simhw.Simulate(msa.BuildRunSpec(mach, res))
				a := sim.Aggregate
				fmt.Fprintf(w, "   %dT IPC=%.2f MPKI=%.1f L1=%.2f%% LLC=%.1f%% dTLB=%.2f%% Br=%.2f%% bw=%.2f clk=%.2f\n",
					t, a.IPC(), a.CacheMissMPKI(), a.L1MissPct(), a.LLCMissPct(), a.DTLBMissPct(), a.BranchMissPct(), sim.BandwidthUtil, sim.ClockGHz)
			}
		}
	}
	return nil
}
