package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSweepOneSample(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-samples", "2PV7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DB modeled total", "2PV7", "Server", "Desktop", "IPC=", "LLC=", "dTLB="} {
		if !strings.Contains(out, want) {
			t.Errorf("calibration output missing %q", want)
		}
	}
}

func TestSweepUnknownSample(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-samples", "nope"}, &buf); err == nil {
		t.Error("unknown sample accepted")
	}
}
