package main

import (
	"sort"
	"strings"
	"testing"
)

// TestQoSFlagValidation pins the -qos/-fairness flag rules: dependent
// flags without their mode, either mode over HTTP, combinations a mode
// would silently ignore, and the valid spellings.
func TestQoSFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" means the combination must parse
	}{
		{"qos alone", []string{"-qos"}, ""},
		{"qos with tenants", []string{"-qos", "-tenants", "a:w=2;b:r=100"}, ""},
		{"qos with shape", []string{"-qos", "-trace-shape", "bursty"}, ""},
		{"qos with batch", []string{"-qos", "-batch"}, ""},
		{"fairness alone", []string{"-fairness"}, ""},
		{"fairness with seed", []string{"-fairness", "-seed", "11"}, ""},

		{"tenants without qos", []string{"-tenants", "a:w=2"}, "need -qos"},
		{"shape without qos", []string{"-trace-shape", "bursty"}, "need -qos"},
		{"tenants with fairness", []string{"-fairness", "-tenants", "a:w=2"}, "need -qos"},
		{"qos and fairness", []string{"-qos", "-fairness"}, "mutually exclusive"},
		{"qos over http", []string{"-qos", "-addr", "http://x"}, "in-process"},
		{"fairness over http", []string{"-fairness", "-addr", "http://x"}, "in-process"},
		{"qos with chaos", []string{"-qos", "-chaos"}, "drop"},
		{"qos with chaos-disk", []string{"-qos", "-chaos-disk"}, "drop"},
		{"qos with batch-sweep", []string{"-qos", "-batch-sweep"}, "drop"},
		{"qos with ppi", []string{"-qos", "-ppi", "4"}, "drop"},
		{"qos with warm", []string{"-qos", "-warm", "-cache-dir", "/tmp/x"}, "drop"},
		{"qos with compare-cache", []string{"-qos", "-compare-cache"}, "drop"},
		{"qos with cache-dir", []string{"-qos", "-cache-dir", "/tmp/x"}, "drop"},
		{"fairness with mix", []string{"-fairness", "-mix", "promo:1"}, "fixes its own"},
		{"fairness with n", []string{"-fairness", "-n", "50"}, "fixes its own"},
		{"fairness with batch", []string{"-fairness", "-batch"}, "fixes its own"},
		{"tenants with global n", []string{"-qos", "-tenants", "a:w=2", "-n", "50"}, "drop it"},
		{"bad shape", []string{"-qos", "-trace-shape", "sawtooth"}, "unknown arrival shape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("args %v rejected: %v", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("args %v accepted, want error containing %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestParseTenantsSpec pins the -tenants grammar: quota and trace keys,
// defaults, '|' mix separators, and every rejection class.
func TestParseTenantsSpec(t *testing.T) {
	ts, err := parseTenants("inter:w=8,rps=0.25,n=16,shape=uniform,mix=2PV7:3|7RCE:2;storm:w=1,r=250,b=500", "bursty", "promo:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d tenants", len(ts))
	}
	inter := ts[0]
	if inter.qos.Weight != 8 || inter.rps != 0.25 || inter.n != 16 || inter.shape != "uniform" || inter.mix != "2PV7:3,7RCE:2" {
		t.Fatalf("inter parsed wrong: %+v", inter)
	}
	storm := ts[1]
	if storm.qos.Rate != 250 || storm.qos.Burst != 500 {
		t.Fatalf("storm quota parsed wrong: %+v", storm)
	}
	// Omitted trace keys inherit the caller's defaults.
	if storm.shape != "bursty" || storm.mix != "promo:1" || storm.n != 20 {
		t.Fatalf("storm defaults wrong: %+v", storm)
	}

	for _, bad := range []string{
		"",                     // empty spec
		":w=2",                 // missing name
		"a:w=2;a:w=3",          // duplicate tenant
		"a:w",                  // not k=v
		"a:w=-1",               // negative quota
		"a:rps=0",              // non-positive rate
		"a:n=0",                // non-positive count
		"a:shape=sawtooth",     // unknown shape
		"a:mix=nosuchsample:1", // unresolvable mix
		"a:color=blue",         // unknown key
		"a:mix=2PV7:0",         // bad mix weight
	} {
		if _, err := parseTenants(bad, "", "promo:1"); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestBuildTenantEventsDeterministic pins the merged trace: a pure
// function of (seed, spec), sorted by arrival, covering every tenant's
// full request count.
func TestBuildTenantEventsDeterministic(t *testing.T) {
	spec := "a:n=10,rps=1,shape=bursty;b:n=5,rps=0.5,shape=heavytail"
	ts, err := parseTenants(spec, "", "promo:1")
	if err != nil {
		t.Fatal(err)
	}
	ev1, err := buildTenantEvents(ts, 7)
	if err != nil {
		t.Fatal(err)
	}
	ev2, _ := buildTenantEvents(ts, 7)
	if len(ev1) != 15 {
		t.Fatalf("got %d events, want 15", len(ev1))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("event %d differs across identical builds: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	if !sort.SliceIsSorted(ev1, func(i, j int) bool { return ev1[i].arrival < ev1[j].arrival }) {
		t.Fatal("events not sorted by arrival")
	}
	ev3, _ := buildTenantEvents(ts, 8)
	same := true
	for i := range ev1 {
		if ev1[i] != ev3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence the tenant trace")
	}
}
