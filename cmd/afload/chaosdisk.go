// Disk-chaos mode: afload -chaos-disk drives the persistent chain-cache
// tier through the full disaster sequence and asserts that it can never
// change a served result — the crash-safety gate behind `make chaos-disk`.
//
// The sequence:
//
//  1. a reference pass with no cache at all records the ground-truth
//     result digest of every request;
//  2. phase A runs the trace over a disk tier with a seeded fault storm
//     (torn writes, failed fsyncs, crashes between temp file and rename,
//     silent bit flips, read errors), then spills the memory tier and
//     closes the store — a clean shutdown after a dirty life;
//  3. a clean reopen then refills the tier: whatever the storm destroyed
//     is recomputed and spilled again, so the directory holds a full,
//     healthy set of entries regardless of how the fault budget landed;
//  4. the directory is then vandalized directly: one entry truncated, one
//     bit-flipped, an orphan temp file planted;
//  5. phase B reopens the store (the restart), runs the trace against a
//     cold memory tier, and requires every result to match the reference
//     digest bitwise, with at least one disk hit and every corrupt entry
//     counted and dropped rather than served;
//  6. phase C runs over a store whose every disk operation fails, and
//     requires the breaker to open into memory-only mode with zero failed
//     requests and further disk traffic visibly skipped.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"afsysbench/internal/cache"
	"afsysbench/internal/cachedisk"
	"afsysbench/internal/core"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
	"afsysbench/internal/serve"
)

// chaosDiskFaultSpec is phase A's storm: a bounded budget of every disk
// fault class, so writes tear, fsyncs fail, renames crash mid-commit,
// payloads flip bits after checksumming, and reads error — each a few
// times, leaving the tier mostly functional but never trustworthy.
const chaosDiskFaultSpec = "diskfault:write:2,diskfault:fsync:1,diskfault:rename:1,diskfault:flip:2,diskfault:read:2"

// ChaosDiskReport is the machine-readable outcome of one disk storm.
type ChaosDiskReport struct {
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`

	// Phase A: the faulty life of the store.
	FaultyDone    int              `json:"faulty_done"`
	FaultySpilled int              `json:"faulty_spilled"`
	FaultyDisk    *cachedisk.Stats `json:"faulty_disk,omitempty"`

	// Phase B: the restart over the vandalized directory.
	RestartDone     int              `json:"restart_done"`
	RestartDiskHits int64            `json:"restart_disk_hits"`
	RestartDisk     *cachedisk.Stats `json:"restart_disk,omitempty"`

	// Phase C: the dark disk.
	DarkDone     int              `json:"dark_done"`
	DarkFailed   int              `json:"dark_failed"`
	DarkDegraded bool             `json:"dark_degraded"`
	DarkDisk     *cachedisk.Stats `json:"dark_disk,omitempty"`

	WallSeconds float64 `json:"wall_seconds"`

	// Violations lists every broken invariant; empty means the storm
	// passed.
	Violations []string `json:"violations,omitempty"`
}

// resultDigest captures everything about a request's outcome that the
// cache tiers must never change.
func resultDigest(res *core.PipelineResult) string {
	return fmt.Sprintf("%s|%x|%x|%x|%x|%x|%d|%d|%d",
		res.Sample,
		res.MSASeconds, res.MSACPUSeconds, res.MSADiskSeconds,
		res.Inference.ComputeSeconds, res.Inference.Total(),
		res.MSAData.Features.Bytes(),
		res.MSAData.TotalHitResidues, res.MSAData.SerialInstructions)
}

// chaosDiskPass runs the trace through one server configuration and
// returns the per-sample digests plus the statuses. A sample whose
// repeats disagree with each other is itself a violation, recorded by the
// caller via the digest comparison.
func chaosDiskPass(o options, suite *core.Suite, mach platform.Machine, trace []string, mem *cache.Cache, disk *cachedisk.Store) (*serve.Server, []serve.JobStatus, map[string]string, error) {
	s := serve.NewWithSuite(suite, serve.Config{
		Machine:    mach,
		Threads:    o.threads,
		MSAWorkers: o.msaWorkers,
		GPUWorkers: o.gpuWorkers,
		QueueDepth: o.queue,
		Cache:      mem,
		DiskCache:  disk,
	})
	s.Start()
	drive(inprocTarget{s: s}, trace, o.concurrency, o.threads)
	statuses := s.Statuses()
	digests := make(map[string]string)
	for _, st := range statuses {
		if st.State != "done" {
			continue
		}
		res, ok := s.Result(st.ID)
		if !ok {
			return s, statuses, digests, fmt.Errorf("no result for done job %s", st.ID)
		}
		d := resultDigest(res)
		if prev, dup := digests[st.Sample]; dup && prev != d {
			return s, statuses, digests, fmt.Errorf("sample %s nondeterministic within one pass", st.Sample)
		}
		digests[st.Sample] = d
	}
	return s, statuses, digests, nil
}

// compareDigests appends a violation for every sample whose digest
// differs from the reference and every reference sample the pass never
// completed.
func compareDigests(phase string, ref, got map[string]string, violations []string) []string {
	for sample, want := range ref {
		d, ok := got[sample]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: sample %s never completed", phase, sample))
			continue
		}
		if d != want {
			violations = append(violations, fmt.Sprintf("%s: sample %s diverged from reference:\n  want %s\n  got  %s", phase, sample, want, d))
		}
	}
	return violations
}

// vandalizeStore corrupts the closed store's directory in place: the
// first entry is truncated to half, the second gets a payload bit flip,
// and an orphan temp file (a simulated mid-write crash) is planted. At
// least three entries must exist so one healthy entry survives to prove
// the disk read path.
func vandalizeStore(dir string) error {
	ents, err := filepath.Glob(filepath.Join(dir, "objects", "*.ent"))
	if err != nil {
		return err
	}
	if len(ents) < 3 {
		return fmt.Errorf("only %d entries on disk; the gate needs >= 3 distinct chains (raise -ppi or widen -mix)", len(ents))
	}
	sort.Strings(ents)
	b, err := os.ReadFile(ents[0])
	if err != nil {
		return err
	}
	if err := os.WriteFile(ents[0], b[:len(b)/2], 0o644); err != nil {
		return err
	}
	b, err = os.ReadFile(ents[1])
	if err != nil {
		return err
	}
	b[len(b)-1] ^= 0x01
	if err := os.WriteFile(ents[1], b, 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "objects", "crash.ent.tmp"), []byte("torn"), 0o644)
}

// runChaosDisk executes the disk storm and returns an error (after
// printing the report and the reproduction line) if any invariant broke.
func runChaosDisk(o options, out *os.File) error {
	var trace []string
	var err error
	if o.ppi > 0 {
		trace, err = buildPPITrace(o.ppi, o.seed)
	} else {
		var samples []string
		var weights []int
		samples, weights, err = parseMix(o.mix)
		if err == nil {
			trace = buildTrace(samples, weights, o.n, o.seed)
		}
	}
	if err != nil {
		return err
	}
	mach, err := machineByName(o.machine)
	if err != nil {
		return err
	}
	suite, err := core.NewSuite()
	if err != nil {
		return err
	}
	dir := o.cacheDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "afload-chaos-disk-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	rep := ChaosDiskReport{Seed: o.seed, Requests: len(trace)}
	start := time.Now()

	// Ground truth: no cache anywhere.
	sRef, _, refDigests, err := chaosDiskPass(o, suite, mach, trace, nil, nil)
	sRef.Stop()
	if err != nil {
		return err
	}

	// Phase A: the faulty life.
	faults, err := resilience.ParseFaults(chaosDiskFaultSpec)
	if err != nil {
		return err
	}
	store, err := cachedisk.Open(cachedisk.Config{
		Dir:      dir,
		Injector: resilience.NewInjector(faults, rng.New(o.seed).Split(0xD15C)),
	})
	if err != nil {
		return err
	}
	sA, stA, digA, err := chaosDiskPass(o, suite, mach, trace, cache.New(0), store)
	if err != nil {
		sA.Stop()
		return err
	}
	for _, st := range stA {
		if st.State == "done" {
			rep.FaultyDone++
		}
	}
	rep.Violations = compareDigests("phase A (faulty disk)", refDigests, digA, rep.Violations)
	rep.FaultySpilled = sA.SpillCache()
	sA.Stop()
	dsA := store.Stats()
	rep.FaultyDisk = &dsA
	if err := store.Close(); err != nil {
		return err
	}
	if rep.FaultySpilled == 0 {
		rep.Violations = append(rep.Violations, "phase A: nothing spilled to disk; later phases prove nothing")
	}

	// Refill: a clean reopen recomputes whatever the storm destroyed and
	// spills again, leaving a full healthy entry set. Its results must
	// match the reference too — the half-damaged tier serves what it can
	// and recomputes the rest.
	store, err = cachedisk.Open(cachedisk.Config{Dir: dir})
	if err != nil {
		return err
	}
	sR, _, digR, err := chaosDiskPass(o, suite, mach, trace, cache.New(0), store)
	if err != nil {
		sR.Stop()
		return err
	}
	rep.Violations = compareDigests("refill (post-storm reopen)", refDigests, digR, rep.Violations)
	sR.SpillCache()
	sR.Stop()
	if err := store.Close(); err != nil {
		return err
	}

	// Vandalize the directory, then restart.
	if err := vandalizeStore(dir); err != nil {
		return err
	}
	store, err = cachedisk.Open(cachedisk.Config{Dir: dir})
	if err != nil {
		return err
	}
	sB, stB, digB, err := chaosDiskPass(o, suite, mach, trace, cache.New(0), store)
	if err != nil {
		sB.Stop()
		return err
	}
	for _, st := range stB {
		if st.State == "done" {
			rep.RestartDone++
		}
	}
	rep.Violations = compareDigests("phase B (restart)", refDigests, digB, rep.Violations)
	rep.RestartDiskHits = sB.Metrics().Get("msa_chain_disk_hits")
	sB.Stop()
	dsB := store.Stats()
	rep.RestartDisk = &dsB
	if err := store.Close(); err != nil {
		return err
	}
	if rep.RestartDone != len(trace) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("phase B: %d of %d requests done over the vandalized tier", rep.RestartDone, len(trace)))
	}
	if rep.RestartDiskHits == 0 {
		rep.Violations = append(rep.Violations, "phase B: no chain served from disk after restart")
	}
	if rep.RestartDisk.CorruptDropped+rep.RestartDisk.JournalTailDropped == 0 {
		rep.Violations = append(rep.Violations, "phase B: vandalized entries were not detected and dropped")
	}
	if rep.RestartDisk.OrphansDropped == 0 {
		rep.Violations = append(rep.Violations, "phase B: the planted mid-write orphan was not swept")
	}

	// Phase C: every disk operation fails; the tier must get out of the
	// way.
	dark, err := resilience.ParseFaults("diskfault:*:1000000")
	if err != nil {
		return err
	}
	darkDir, err := os.MkdirTemp("", "afload-chaos-dark-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(darkDir)
	store, err = cachedisk.Open(cachedisk.Config{
		Dir:              darkDir,
		Injector:         resilience.NewInjector(dark, rng.New(o.seed).Split(0xDA4C)),
		BreakerThreshold: 3,
	})
	if err != nil {
		return err
	}
	sC, stC, digC, err := chaosDiskPass(o, suite, mach, trace, cache.New(0), store)
	if err != nil {
		sC.Stop()
		return err
	}
	for _, st := range stC {
		switch st.State {
		case "done":
			rep.DarkDone++
		case "failed":
			rep.DarkFailed++
		}
	}
	rep.Violations = compareDigests("phase C (dark disk)", refDigests, digC, rep.Violations)
	// The first spill's write failures trip the breaker; the second must
	// be skipped outright while it is open.
	sC.SpillCache()
	sC.SpillCache()
	sC.Stop()
	dsC := store.Stats()
	rep.DarkDisk = &dsC
	rep.DarkDegraded = store.Degraded()
	store.Close()
	if rep.DarkFailed > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("phase C: %d requests failed under a dark disk (must degrade, never fail)", rep.DarkFailed))
	}
	if !rep.DarkDegraded {
		rep.Violations = append(rep.Violations, "phase C: breaker never opened into memory-only mode")
	}
	if rep.DarkDisk.DegradedOps == 0 {
		rep.Violations = append(rep.Violations, "phase C: degraded operations were not counted")
	}

	rep.WallSeconds = time.Since(start).Seconds()
	printChaosDisk(out, rep)
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	if len(rep.Violations) > 0 {
		repro := fmt.Sprintf("afload -chaos-disk -seed %d -concurrency %d -threads %d", o.seed, o.concurrency, o.threads)
		if o.ppi > 0 {
			repro += fmt.Sprintf(" -ppi %d", o.ppi)
		} else {
			repro += fmt.Sprintf(" -n %d -mix %s", o.n, o.mix)
		}
		return fmt.Errorf("disk chaos FAILED (%d violations); reproduce with: %s", len(rep.Violations), repro)
	}
	fmt.Fprintf(out, "chaos-disk: all invariants held (seed %d)\n", o.seed)
	return nil
}

func printChaosDisk(w *os.File, rep ChaosDiskReport) {
	fmt.Fprintf(w, "chaos-disk seed %d: %d req in %.1fs | faulty life: %d done, %d spilled | restart: %d done, %d disk hits, %d corrupt dropped, %d orphans swept | dark disk: %d done, %d failed, degraded=%v\n",
		rep.Seed, rep.Requests, rep.WallSeconds,
		rep.FaultyDone, rep.FaultySpilled,
		rep.RestartDone, rep.RestartDiskHits,
		rep.RestartDisk.CorruptDropped, rep.RestartDisk.OrphansDropped,
		rep.DarkDone, rep.DarkFailed, rep.DarkDegraded)
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "chaos-disk VIOLATION: %s\n", v)
	}
}
