// Command afload is the closed-loop load generator for the serving
// subsystem. It synthesizes a deterministic weighted request mix, drives it
// through -concurrency closed-loop clients (each submits, waits for the
// terminal state, then submits the next), and reports throughput, latency
// percentiles (p50/p95/p99), cache hit rate and shed rate.
//
// Two targets:
//
//	afload -addr http://host:8642 -n 100 -mix promo:1,1YY9:9
//	    drives a running afserve over its HTTP API.
//
//	afload -n 30 -mix promo:1,1YY9:9 -compare-cache -json BENCH_serve.json
//	    (no -addr) embeds the scheduler in-process, runs the same trace
//	    with the cache enabled and disabled, and writes the comparison —
//	    the `make serve-bench` artifact.
//
//	afload -chaos -n 120 -mix 2PV7:4,1YY9:1
//	    (no -addr) runs the seeded fault storm of chaos.go against a live
//	    in-process scheduler and exits non-zero if any fault-tolerance
//	    invariant breaks — the `make chaos` gate.
//
//	afload -ppi 6 -cache-dir /var/cache/af -warm -compare-cache
//	    runs the all-vs-all PPI screening mix over the two-tier chain
//	    cache: a warm pass precomputes the disk tier, the measured pass
//	    starts with a cold memory tier, and -compare-cache adds the
//	    cache-off and request-keyed baselines with the modeled makespan
//	    improvement of chain-level keys.
//
//	afload -chaos-disk -ppi 4
//	    runs the disk-fault chaos gate of chaosdisk.go: injected disk
//	    faults, a vandalized store directory, a restart and a fully dark
//	    disk, asserting that no request ever fails or returns a result
//	    different from fresh compute — the `make chaos-disk` gate.
//
// The request trace is a pure function of -seed, -mix/-ppi and -n, so runs
// are reproducible end to end.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"afsysbench/internal/cache"
	"afsysbench/internal/cachedisk"
	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/platform"
	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
	"afsysbench/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "afload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr         string
	n            int
	concurrency  int
	mix          string
	ppi          int
	seed         uint64
	machine      string
	threads      int
	msaWorkers   int
	gpuWorkers   int
	queue        int
	cacheMB      int
	cacheDir     string
	warm         bool
	compareCache bool
	chaos        bool
	chaosDisk    bool
	batch        bool
	batchBuckets string
	maxBatch     int
	batchSweep   bool
	qosMode      bool
	fairness     bool
	tenants      string
	traceShape   string
	jsonPath     string
	// mixSet records whether -mix was given explicitly, so modes with a
	// better-suited default (the batch sweep wants small inputs) can tell
	// "caller chose the stock mix" from "caller chose nothing".
	mixSet bool
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("afload", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "", "afserve base URL; empty runs the scheduler in-process")
	fs.IntVar(&o.n, "n", 30, "total requests")
	fs.IntVar(&o.concurrency, "concurrency", 4, "closed-loop client count")
	fs.StringVar(&o.mix, "mix", "promo:1,1YY9:9", "weighted sample mix, e.g. promo:1,1YY9:9")
	fs.IntVar(&o.ppi, "ppi", 0, "all-vs-all PPI screen over the first N pool proteins (overrides -mix/-n)")
	fs.Uint64Var(&o.seed, "seed", 7, "trace seed (trace is a pure function of seed, mix, n)")
	fs.StringVar(&o.machine, "machine", "server", "platform for in-process mode")
	fs.IntVar(&o.threads, "threads", 4, "per-request thread count")
	fs.IntVar(&o.msaWorkers, "msa-workers", 0, "in-process MSA pool size; 0 = one per core")
	fs.IntVar(&o.gpuWorkers, "gpu-workers", 0, "in-process GPU pool size; 0 = one per modeled device")
	fs.IntVar(&o.queue, "queue", 64, "in-process admission queue depth")
	fs.IntVar(&o.cacheMB, "cache-mb", 512, "in-process cache capacity in MiB; 0 disables")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "in-process only: attach the persistent chain-cache tier rooted at this directory")
	fs.BoolVar(&o.warm, "warm", false, "in-process only: precompute the trace into the disk tier, then measure with a cold memory tier (needs -cache-dir)")
	fs.BoolVar(&o.compareCache, "compare-cache", false, "in-process only: rerun the trace cache-disabled and request-keyed and report the speedups")
	fs.BoolVar(&o.chaos, "chaos", false, "in-process only: run the seeded fault storm and assert the fault-tolerance invariants instead of measuring throughput")
	fs.BoolVar(&o.chaosDisk, "chaos-disk", false, "in-process only: run the disk-fault chaos gate against the persistent tier and assert the crash-safety invariants")
	fs.BoolVar(&o.batch, "batch", false, "in-process only: enable cross-request GPU batching with the shape-bucketed compile cache")
	fs.StringVar(&o.batchBuckets, "batch-buckets", "", "comma-separated shape-bucket boundaries for -batch (empty = stock bucket set)")
	fs.IntVar(&o.maxBatch, "max-batch", 0, "cap members per batched dispatch on top of the memory-footprint cap (0 = memory cap only)")
	fs.BoolVar(&o.batchSweep, "batch-sweep", false, "in-process only: sweep batch size, offered load and bucket count, report the compile-dominated -> compute-dominated crossover, and merge a batch_crossover section into -json")
	fs.BoolVar(&o.qosMode, "qos", false, "in-process only: drive the trace open-loop through the tenant-aware scheduler (per-tenant admission, WFQ, brownout) and report the fairness block")
	fs.BoolVar(&o.fairness, "fairness", false, "in-process only: run the adversarial screening-storm fairness gate and exit non-zero if QoS fails to protect the victim tenant")
	fs.StringVar(&o.tenants, "tenants", "", "-qos tenant spec: 'name:w=8,rps=0.5,n=20,shape=bursty,mix=2PV7:3|7RCE:2;...' (keys w/r/b set the quota, rps/n/shape/mix the offered trace)")
	fs.StringVar(&o.traceShape, "trace-shape", "", "-qos default arrival shape for tenants without shape= (uniform, bursty, diurnal, heavytail)")
	fs.StringVar(&o.jsonPath, "json", "", "write the report JSON to this path")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	// explicit records which flags the caller actually set, so dependent
	// combinations can be told apart from defaults (-ppi silently overriding
	// the default -mix is fine; overriding an explicit -mix is a footgun).
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	o.mixSet = explicit["mix"]
	if o.n <= 0 || o.concurrency <= 0 {
		return o, fmt.Errorf("-n and -concurrency must be positive")
	}
	if o.addr != "" && o.compareCache {
		return o, fmt.Errorf("-compare-cache needs the in-process mode (drop -addr)")
	}
	if o.addr != "" && o.chaos {
		return o, fmt.Errorf("-chaos needs the in-process mode (drop -addr)")
	}
	if o.addr != "" && (o.chaosDisk || o.cacheDir != "" || o.warm) {
		return o, fmt.Errorf("-chaos-disk, -cache-dir and -warm need the in-process mode (drop -addr)")
	}
	if o.chaos && o.chaosDisk {
		return o, fmt.Errorf("-chaos and -chaos-disk are mutually exclusive (run the gates separately)")
	}
	if o.chaos && (o.ppi > 0 || o.cacheDir != "" || o.warm || o.compareCache) {
		return o, fmt.Errorf("-chaos drives its own trace through a cache-less scheduler and ignores -ppi, -cache-dir, -warm and -compare-cache; drop them")
	}
	if o.chaosDisk && (o.warm || o.compareCache) {
		return o, fmt.Errorf("-chaos-disk runs its own warm/cold passes and ignores -warm and -compare-cache; drop them")
	}
	if o.warm && o.cacheDir == "" && !o.chaosDisk {
		return o, fmt.Errorf("-warm needs -cache-dir (the tier it precomputes into)")
	}
	if o.cacheMB <= 0 && (o.compareCache || o.cacheDir != "") && !o.chaosDisk {
		return o, fmt.Errorf("-compare-cache and -cache-dir need the memory tier (-cache-mb > 0)")
	}
	if o.batchSweep && o.addr != "" {
		return o, fmt.Errorf("-batch-sweep needs the in-process mode (drop -addr)")
	}
	if o.batchSweep && (o.chaos || o.chaosDisk || o.ppi > 0 || o.warm || o.compareCache || o.cacheDir != "" || o.batch) {
		return o, fmt.Errorf("-batch-sweep drives its own batching passes; drop -chaos, -chaos-disk, -ppi, -warm, -compare-cache, -cache-dir and -batch")
	}
	if o.addr != "" && (o.batch || o.batchBuckets != "" || o.maxBatch > 0) {
		return o, fmt.Errorf("-batch, -batch-buckets and -max-batch need the in-process mode (drop -addr)")
	}
	if !o.batch && !o.batchSweep && (o.batchBuckets != "" || o.maxBatch > 0) {
		return o, fmt.Errorf("-batch-buckets and -max-batch need -batch")
	}
	if _, err := parseBuckets(o.batchBuckets); err != nil {
		return o, err
	}
	if o.ppi < 0 || o.ppi > inputs.PPIPoolSize {
		return o, fmt.Errorf("-ppi must be in [0,%d]", inputs.PPIPoolSize)
	}
	if o.ppi > 0 && (explicit["mix"] || explicit["n"]) {
		return o, fmt.Errorf("-ppi derives the all-vs-all trace itself and overrides -mix and -n; drop them")
	}
	if o.qosMode && o.fairness {
		return o, fmt.Errorf("-qos and -fairness are mutually exclusive (the gate runs its own QoS passes)")
	}
	if (o.qosMode || o.fairness) && o.addr != "" {
		return o, fmt.Errorf("-qos and -fairness need the in-process mode (drop -addr)")
	}
	if (o.qosMode || o.fairness) && (o.chaos || o.chaosDisk || o.batchSweep || o.ppi > 0 || o.warm || o.compareCache || o.cacheDir != "") {
		return o, fmt.Errorf("-qos and -fairness drive their own open-loop tenant traces through a cache-less scheduler; drop -chaos, -chaos-disk, -batch-sweep, -ppi, -warm, -compare-cache and -cache-dir")
	}
	if (o.tenants != "" || o.traceShape != "") && !o.qosMode {
		return o, fmt.Errorf("-tenants and -trace-shape need -qos (the fairness gate fixes its own scenario)")
	}
	if o.fairness && (explicit["mix"] || explicit["n"] || o.batch) {
		return o, fmt.Errorf("-fairness fixes its own victim/storm traces and batching passes; drop -mix, -n and -batch")
	}
	if o.qosMode && o.tenants != "" && explicit["n"] {
		return o, fmt.Errorf("-tenants carries per-tenant request counts (n=); a global -n would be ignored, drop it")
	}
	if err := validShape(o.traceShape); err != nil {
		return o, err
	}
	return o, nil
}

// parseMix parses "promo:1,1YY9:9" into ordered (sample, weight) pairs.
func parseMix(spec string) ([]string, []int, error) {
	var samples []string
	var weights []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, ":")
		w := 1
		if ok {
			var err error
			w, err = strconv.Atoi(wstr)
			if err != nil || w <= 0 {
				return nil, nil, fmt.Errorf("bad mix weight in %q", part)
			}
		}
		samples = append(samples, name)
		weights = append(weights, w)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("empty -mix")
	}
	return samples, weights, nil
}

// buildTrace derives the deterministic request trace: n weighted draws
// from the mix using the suite's splittable RNG.
func buildTrace(samples []string, weights []int, n int, seed uint64) []string {
	total := 0
	for _, w := range weights {
		total += w
	}
	src := rng.New(seed).Split(0x10AD)
	trace := make([]string, n)
	for i := range trace {
		pick := src.Split(uint64(i)).Intn(total)
		for j, w := range weights {
			if pick < w {
				trace[i] = samples[j]
				break
			}
			pick -= w
		}
	}
	return trace
}

// buildPPITrace derives the all-vs-all screening trace: every unordered
// pair over the first n pool proteins, in an order deterministically
// shuffled by the seed so consecutive requests do not trivially share a
// chain.
func buildPPITrace(n int, seed uint64) ([]string, error) {
	pairs, err := inputs.PPIAllPairs(n)
	if err != nil {
		return nil, err
	}
	trace := make([]string, len(pairs))
	for i, in := range pairs {
		trace[i] = in.Name
	}
	src := rng.New(seed).Split(0x9919)
	for i := len(trace) - 1; i > 0; i-- {
		j := src.Split(uint64(i)).Intn(i + 1)
		trace[i], trace[j] = trace[j], trace[i]
	}
	return trace, nil
}

// target abstracts where requests go: the in-process scheduler or a remote
// afserve over HTTP.
type target interface {
	// submit returns the job id, shed=true on admission shedding.
	submit(sample string, threads int) (id string, shed bool, err error)
	// wait blocks until the job is terminal and returns its status.
	wait(id string) (serve.JobStatus, error)
}

type inprocTarget struct{ s *serve.Server }

func (t inprocTarget) submit(sample string, threads int) (string, bool, error) {
	id, err := t.s.Submit(serve.Request{Sample: sample, Threads: threads})
	if resilience.IsOverloaded(err) {
		return "", true, nil
	}
	return id, false, err
}

func (t inprocTarget) wait(id string) (serve.JobStatus, error) {
	for {
		st, ok := t.s.Status(id)
		if !ok {
			return st, fmt.Errorf("job %s vanished", id)
		}
		if st.State == "done" || st.State == "failed" {
			return st, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

type httpTarget struct {
	base   string
	client *http.Client
}

func (t httpTarget) submit(sample string, threads int) (string, bool, error) {
	body, _ := json.Marshal(serve.SubmitRequest{Sample: sample, Threads: threads})
	resp, err := t.client.Post(t.base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return "", true, nil
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", false, fmt.Errorf("submit %s: HTTP %d", sample, resp.StatusCode)
	}
	var sub serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return "", false, err
	}
	return sub.ID, false, nil
}

func (t httpTarget) wait(id string) (serve.JobStatus, error) {
	for {
		resp, err := t.client.Get(t.base + "/v1/jobs/" + id)
		if err != nil {
			return serve.JobStatus{}, err
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return serve.JobStatus{}, err
		}
		if st.State == "done" || st.State == "failed" {
			return st, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// drive runs the trace through the target with closed-loop clients and
// returns the measured stats. Clients pull trace entries in order from a
// shared cursor; each waits for its request to finish before taking the
// next.
func drive(t target, trace []string, concurrency, threads int) serve.LoadStats {
	var (
		mu        sync.Mutex
		next      int
		latencies []float64
		stats     serve.LoadStats
	)
	stats.Requests = len(trace)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(trace) {
					mu.Unlock()
					return
				}
				sample := trace[next]
				next++
				mu.Unlock()

				t0 := time.Now()
				id, shed, err := t.submit(sample, threads)
				if err != nil {
					mu.Lock()
					stats.Failed++
					mu.Unlock()
					continue
				}
				if shed {
					mu.Lock()
					stats.Shed++
					mu.Unlock()
					continue
				}
				st, err := t.wait(id)
				elapsed := time.Since(t0).Seconds() * 1000
				mu.Lock()
				if err != nil || st.State != "done" {
					stats.Failed++
				} else {
					stats.Completed++
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.WallSeconds = time.Since(start).Seconds()
	if stats.WallSeconds > 0 {
		stats.Throughput = float64(stats.Completed) / stats.WallSeconds
	}
	if stats.Requests > 0 {
		stats.ShedRate = float64(stats.Shed) / float64(stats.Requests)
	}
	sort.Float64s(latencies)
	stats.Latency = serve.Summarize(latencies)
	return stats
}

// passConfig tunes one in-process pass beyond the shared flags.
type passConfig struct {
	withCache     bool
	disk          *cachedisk.Store // nil = memory-only
	requestScoped bool             // the request-keyed baseline mode
	spill         bool             // push the surviving memory tier to disk after the run
	coldModel     bool             // stock one-container-per-request deployment
	batch         serve.BatchConfig
}

// parseBuckets parses the -batch-buckets list ("512,1024,2048"); empty
// means the stock bucket set (nil).
func parseBuckets(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b, err := strconv.Atoi(part)
		if err != nil || b <= 0 {
			return nil, fmt.Errorf("bad -batch-buckets entry %q", part)
		}
		out = append(out, b)
	}
	return out, nil
}

// runInprocPass builds a scheduler from the flags, drives the trace, and
// fills in the server-side accounting (cache stats, chain-tier breakdown,
// modeled makespans).
func runInprocPass(o options, suite *core.Suite, mach platform.Machine, trace []string, label string, pc passConfig) (serve.LoadStats, error) {
	var c *cache.Cache
	if pc.withCache && o.cacheMB > 0 {
		c = cache.New(int64(o.cacheMB) << 20)
	}
	s := serve.NewWithSuite(suite, serve.Config{
		Machine:           mach,
		Threads:           o.threads,
		MSAWorkers:        o.msaWorkers,
		GPUWorkers:        o.gpuWorkers,
		QueueDepth:        o.queue,
		Cache:             c,
		DiskCache:         pc.disk,
		RequestScopedKeys: pc.requestScoped,
		ColdModel:         pc.coldModel,
		Batch:             pc.batch,
	})
	s.Start()
	stats := drive(inprocTarget{s: s}, trace, o.concurrency, o.threads)
	if pc.spill {
		s.SpillCache()
	}
	s.Stop()
	stats.Label = label
	stats.Cache = c.Stats()
	stats.CacheHitRate = stats.Cache.HitRate()
	m := s.Metrics()
	stats.Routing = &serve.RoutingBreakdown{
		Shed:            m.Get("requests_shed"),
		ShedQueueFull:   m.Get("requests_shed_queue_full"),
		ShedRateLimited: m.Get("requests_shed_rate_limited"),
		ShedBrownout:    m.Get("requests_shed_brownout"),
		Hedges:          m.Get("msa_hedges"),
		HedgeBackupWins: m.Get("msa_hedge_backup_wins"),
		StageRetries:    m.Get("msa_stage_retries"),
		ChainsRestored:  m.Get("msa_chains_restored"),
		PartialMSA:      m.Get("requests_partial_msa"),
	}
	stats.ChainMemHits = m.Get("msa_chain_mem_hits")
	stats.ChainDiskHits = m.Get("msa_chain_disk_hits")
	stats.ChainFresh = m.Get("msa_chain_misses")
	if lookups := stats.ChainMemHits + stats.ChainDiskHits + stats.ChainFresh; lookups > 0 {
		stats.MemHitRate = float64(stats.ChainMemHits) / float64(lookups)
		stats.DiskHitRate = float64(stats.ChainDiskHits) / float64(lookups)
	}
	if pc.disk != nil {
		ds := pc.disk.Stats()
		stats.Disk = &ds
	}
	cfg := s.Config()
	sched := s.ModeledSchedule(cfg.MSAWorkers, cfg.GPUWorkers)
	stats.ModeledMakespan = sched.Makespan
	stats.ModeledSerial = s.SerialMakespan()
	if sched.Makespan > 0 {
		stats.ModeledSpeedup = stats.ModeledSerial / sched.Makespan
	}
	stats.Batch = s.BatchReport()
	return stats, nil
}

func printStats(w *os.File, st serve.LoadStats) {
	fmt.Fprintf(w, "%-10s %3d req: %d done, %d shed, %d failed | %.1fs wall, %.2f req/s | p50 %.0fms p95 %.0fms p99 %.0fms | hit rate %.1f%% shed rate %.1f%%\n",
		st.Label, st.Requests, st.Completed, st.Shed, st.Failed,
		st.WallSeconds, st.Throughput,
		st.Latency.P50Ms, st.Latency.P95Ms, st.Latency.P99Ms,
		100*st.CacheHitRate, 100*st.ShedRate)
	if st.ChainMemHits+st.ChainDiskHits+st.ChainFresh > 0 {
		fmt.Fprintf(w, "%-10s chains: %d mem (%.1f%%), %d disk (%.1f%%), %d fresh\n",
			"", st.ChainMemHits, 100*st.MemHitRate, st.ChainDiskHits, 100*st.DiskHitRate, st.ChainFresh)
	}
	if st.ModeledSerial > 0 {
		fmt.Fprintf(w, "%-10s modeled: phase-split makespan %.0fs vs serial %.0fs -> %.2fx\n",
			"", st.ModeledMakespan, st.ModeledSerial, st.ModeledSpeedup)
	}
	if r := st.Routing; r != nil && r.Shed+r.Hedges+r.StageRetries+r.ChainsRestored+r.PartialMSA > 0 {
		fmt.Fprintf(w, "%-10s routing: %d shed, %d hedges (%d backup wins), %d stage retries, %d chains restored, %d partial-msa\n",
			"", r.Shed, r.Hedges, r.HedgeBackupWins, r.StageRetries, r.ChainsRestored, r.PartialMSA)
	}
}

func run(args []string, out *os.File) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.chaos {
		return runChaos(o, out)
	}
	if o.chaosDisk {
		return runChaosDisk(o, out)
	}
	if o.batchSweep {
		return runBatchSweep(o, out)
	}
	if o.fairness {
		return runFairness(o, out)
	}
	if o.qosMode {
		return runQoS(o, out)
	}
	var trace []string
	mixLabel := o.mix
	if o.ppi > 0 {
		trace, err = buildPPITrace(o.ppi, o.seed)
		if err != nil {
			return err
		}
		mixLabel = fmt.Sprintf("ppi all-vs-all over %d pool proteins", o.ppi)
	} else {
		samples, weights, err := parseMix(o.mix)
		if err != nil {
			return err
		}
		trace = buildTrace(samples, weights, o.n, o.seed)
	}

	report := serve.LoadReport{
		Mix:         mixLabel,
		Requests:    len(trace),
		Concurrency: o.concurrency,
		Threads:     o.threads,
		MSAWorkers:  o.msaWorkers,
		GPUWorkers:  o.gpuWorkers,
		QueueDepth:  o.queue,
		CacheMB:     o.cacheMB,
		Seed:        o.seed,
		CacheDir:    o.cacheDir,
	}

	if o.addr != "" {
		t := httpTarget{base: strings.TrimRight(o.addr, "/"), client: &http.Client{Timeout: 5 * time.Minute}}
		stats := drive(t, trace, o.concurrency, o.threads)
		stats.Label = "remote"
		printStats(out, stats)
		report.WithCache = &stats
	} else {
		mach, err := machineByName(o.machine)
		if err != nil {
			return err
		}
		suite, err := core.NewSuite()
		if err != nil {
			return err
		}
		var disk *cachedisk.Store
		if o.cacheDir != "" {
			disk, err = cachedisk.Open(cachedisk.Config{Dir: o.cacheDir})
			if err != nil {
				return err
			}
			defer disk.Close()
		}
		var bcfg serve.BatchConfig
		if o.batch {
			buckets, err := parseBuckets(o.batchBuckets)
			if err != nil {
				return err
			}
			bcfg = serve.BatchConfig{Enabled: true, Buckets: buckets, MaxBatch: o.maxBatch}
		}
		if o.warm {
			// The precompute pass fills the disk tier through a throwaway
			// memory tier, so the measured pass below starts with a cold
			// memory tier but a warm disk.
			warm, err := runInprocPass(o, suite, mach, trace, "warm", passConfig{withCache: true, disk: disk, spill: true, batch: bcfg})
			if err != nil {
				return err
			}
			printStats(out, warm)
			report.Warm = &warm
		}
		withCache, err := runInprocPass(o, suite, mach, trace, "with-cache", passConfig{withCache: true, disk: disk, batch: bcfg})
		if err != nil {
			return err
		}
		printStats(out, withCache)
		report.WithCache = &withCache
		if o.compareCache {
			noCache, err := runInprocPass(o, suite, mach, trace, "no-cache", passConfig{batch: bcfg})
			if err != nil {
				return err
			}
			printStats(out, noCache)
			report.NoCache = &noCache
			if noCache.Throughput > 0 {
				report.ThroughputSpeedup = withCache.Throughput / noCache.Throughput
				fmt.Fprintf(out, "cache throughput speedup: %.2fx (hit rate %.1f%%)\n",
					report.ThroughputSpeedup, 100*withCache.CacheHitRate)
			}
			// The request-keyed memory-only baseline: what the serving tier
			// looked like before chain-level keys. Its modeled makespan over
			// the chain-keyed pass's is the deployment-scale win of sharing
			// chains across complexes.
			baseline, err := runInprocPass(o, suite, mach, trace, "req-keyed", passConfig{withCache: true, requestScoped: true, batch: bcfg})
			if err != nil {
				return err
			}
			printStats(out, baseline)
			report.Baseline = &baseline
			if withCache.ModeledMakespan > 0 {
				report.MakespanImprovement = baseline.ModeledMakespan / withCache.ModeledMakespan
				fmt.Fprintf(out, "chain-keyed modeled makespan improvement over request-keyed: %.2fx\n",
					report.MakespanImprovement)
			}
		}
	}

	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	return nil
}

// machineByName resolves the -machine flag.
func machineByName(name string) (platform.Machine, error) {
	switch name {
	case "server":
		return platform.Server(), nil
	case "desktop":
		return platform.Desktop(), nil
	case "desktop-upgraded":
		return platform.DesktopUpgraded(), nil
	case "server-cxl":
		return platform.ServerWithCXL(), nil
	default:
		return platform.Machine{}, fmt.Errorf("unknown -machine %q (want server, desktop, desktop-upgraded or server-cxl)", name)
	}
}
