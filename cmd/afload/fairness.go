package main

// QoS mode and the fairness gate.
//
// afload -qos drives the merged tenant trace open-loop through a
// tenant-aware scheduler: every submission carries (tenant, modeled
// arrival) and happens before Start, so the admission decisions and the
// WFQ dispatch order are a pure function of (seed, tenant spec) — the
// per-tenant outcome lands in the report's fairness block.
//
// afload -fairness is the adversarial chaos gate (`make fairness`): a
// screening storm offers 10x the victim's load (bursty arrivals, poly-Q
// heavy PPI mix) and the gate asserts that with QoS on the victim keeps
// its solo-baseline latency and shed rate, that the FIFO comparator
// demonstrably violates both, and that the decision/dispatch digests
// reproduce bit-for-bit across a rerun and across pool sizes.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/platform"
	"afsysbench/internal/qos"
	"afsysbench/internal/resilience"
	"afsysbench/internal/serve"
)

// Fairness-gate scenario: the victim is an interactive tenant with a
// small-sample mix and 8x weight; the storm is a bulk screening tenant
// offering 10x the victim's request count at 16x its arrival rate
// (bursty MMPP arrivals, PPI pairs with the poly-Q promoter complex
// mixed in) under a token-bucket quota. Drain/capacity are sized so the
// storm's unthrottled offered load outruns the modeled drain — in FIFO
// mode the backlog pegs and sheds land on whoever arrives next,
// including the victim; with QoS on the storm's bucket and the brownout
// ladder absorb the excess and the victim rides its weight share.
const (
	fairVictim = "inter:w=8,rps=0.25,n=16,shape=uniform,mix=2PV7:3|7RCE:2"
	// The storm's bucket (r=600 > drain) only bites during MMPP bursts
	// (~3000 offered chain-tokens/s), so the gate exercises all three shed
	// classes: rate-limited in bursts, brownout once the mean admitted
	// inflow (~290 chain-tokens/s > 250 drain) walks occupancy up the
	// ladder, queue-full in the FIFO comparator once its unthrottled
	// backlog pegs capacity.
	fairStorm      = "storm:w=1,r=600,b=1200,rps=4,n=160,shape=bursty,mix=ppi-0x1:2|ppi-2x3:2|ppi-4x5:2|promo:1"
	fairDrainTPS   = 250
	fairCapacityTK = 6000
	// fairP95Slack and fairShedMax are the acceptance bounds: protected
	// victim p95 within 1.5x its solo baseline, protected victim shed
	// under 5%.
	fairP95Slack = 1.5
	fairShedMax  = 0.05
	// fairModeledCPU/GPU are the fixed modeled lane counts the latency
	// replay uses — inputs to the model, never the live pool sizes, so
	// the gate's numbers are identical at any -msa-workers.
	fairModeledCPU = 4
	fairModeledGPU = 2
)

// qosPassConfig tunes one open-loop QoS pass.
type qosPassConfig struct {
	fifo       bool
	drainTPS   float64
	capacityTK float64
	ladder     qos.Ladder
	msaWorkers int
	batch      serve.BatchConfig
}

// runQoSPass builds a tenant-aware scheduler, submits the merged event
// trace open-loop (all submissions precede Start), drains it, and
// returns the stats with the fairness block attached.
func runQoSPass(o options, suite *core.Suite, mach platform.Machine, tenants []tenantSpec, label string, pc qosPassConfig) (serve.LoadStats, error) {
	events, err := buildTenantEvents(tenants, o.seed)
	if err != nil {
		return serve.LoadStats{}, err
	}
	ctrl := qos.NewController(qos.Config{
		Tenants:           quotaMap(tenants),
		DrainTokensPerSec: pc.drainTPS,
		CapacityTokens:    pc.capacityTK,
		Ladder:            pc.ladder,
		FIFO:              pc.fifo,
	})
	s := serve.NewWithSuite(suite, serve.Config{
		Machine:    mach,
		Threads:    o.threads,
		MSAWorkers: pc.msaWorkers,
		GPUWorkers: o.gpuWorkers,
		QueueDepth: o.queue,
		QoS:        ctrl,
		Batch:      pc.batch,
	})
	var stats serve.LoadStats
	stats.Label = label
	stats.Requests = len(events)
	start := time.Now()
	for _, ev := range events {
		_, err := s.Submit(serve.Request{
			Sample:  ev.sample,
			Threads: o.threads,
			Tenant:  ev.tenant,
			Arrival: ev.arrival,
		})
		switch {
		case resilience.IsOverloaded(err):
			stats.Shed++
		case err != nil:
			return stats, fmt.Errorf("submit %s for %s: %v", ev.sample, ev.tenant, err)
		}
	}
	s.Start()
	if err := s.WaitIdle(context.Background()); err != nil {
		return stats, err
	}
	s.Stop()
	stats.WallSeconds = time.Since(start).Seconds()
	for _, st := range s.Statuses() {
		if st.State == "done" {
			stats.Completed++
		} else {
			stats.Failed++
		}
	}
	if stats.WallSeconds > 0 {
		stats.Throughput = float64(stats.Completed) / stats.WallSeconds
	}
	if stats.Requests > 0 {
		stats.ShedRate = float64(stats.Shed) / float64(stats.Requests)
	}
	m := s.Metrics()
	stats.Routing = &serve.RoutingBreakdown{
		Shed:            m.Get("requests_shed"),
		ShedQueueFull:   m.Get("requests_shed_queue_full"),
		ShedRateLimited: m.Get("requests_shed_rate_limited"),
		ShedBrownout:    m.Get("requests_shed_brownout"),
		Hedges:          m.Get("msa_hedges"),
		StageRetries:    m.Get("msa_stage_retries"),
		PartialMSA:      m.Get("requests_partial_msa"),
	}
	stats.Fairness = s.FairnessReport(fairModeledCPU, fairModeledGPU)
	// Open-loop latency is the modeled per-tenant distribution; the
	// headline Latency block aggregates all tenants on the same replay.
	stats.Latency = serve.Summarize(allModeledLatencies(stats.Fairness))
	cfg := s.Config()
	sched := s.ModeledSchedule(cfg.MSAWorkers, cfg.GPUWorkers)
	stats.ModeledMakespan = sched.Makespan
	stats.ModeledSerial = s.SerialMakespan()
	if sched.Makespan > 0 {
		stats.ModeledSpeedup = stats.ModeledSerial / sched.Makespan
	}
	stats.Batch = s.BatchReport()
	return stats, nil
}

// allModeledLatencies flattens the per-tenant modeled latency rows into
// one series for the headline percentiles. Percentile interpolation
// needs raw samples, which the rows no longer carry, so this rebuilds an
// approximate series by repeating each tenant's p50 — good enough for a
// label-level summary. (Per-tenant numbers, the ones the gate asserts
// on, are exact.)
func allModeledLatencies(rep *serve.FairnessReport) []float64 {
	var out []float64
	for _, row := range rep.Latencies {
		for i := 0; i < row.Completed; i++ {
			out = append(out, row.Latency.P50Ms)
		}
	}
	return out
}

// runQoS is the -qos mode: one tenant-aware open-loop pass over the
// -tenants spec (or a single default tenant over -mix), reported with
// the per-tenant fairness block.
func runQoS(o options, out *os.File) error {
	tenants, err := qosTenants(o)
	if err != nil {
		return err
	}
	mach, err := machineByName(o.machine)
	if err != nil {
		return err
	}
	suite, err := core.NewSuite()
	if err != nil {
		return err
	}
	var bcfg serve.BatchConfig
	if o.batch {
		buckets, err := parseBuckets(o.batchBuckets)
		if err != nil {
			return err
		}
		bcfg = serve.BatchConfig{Enabled: true, Buckets: buckets, MaxBatch: o.maxBatch}
	}
	stats, err := runQoSPass(o, suite, mach, tenants, "qos", qosPassConfig{
		msaWorkers: o.msaWorkers,
		batch:      bcfg,
	})
	if err != nil {
		return err
	}
	printStats(out, stats)
	printFairness(out, stats.Fairness)
	report := serve.LoadReport{
		Mix:         "qos:" + o.tenants,
		Requests:    stats.Requests,
		Concurrency: o.concurrency,
		Threads:     o.threads,
		MSAWorkers:  o.msaWorkers,
		GPUWorkers:  o.gpuWorkers,
		QueueDepth:  o.queue,
		Seed:        o.seed,
		QoS:         &stats,
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	return nil
}

// qosTenants resolves the -qos tenant set: the -tenants spec, or a
// single default tenant offering the stock -mix at the -trace-shape.
func qosTenants(o options) ([]tenantSpec, error) {
	spec := o.tenants
	if spec == "" {
		spec = fmt.Sprintf("default:n=%d", o.n)
	}
	return parseTenants(spec, o.traceShape, o.mix)
}

func printFairness(w *os.File, rep *serve.FairnessReport) {
	if rep == nil {
		return
	}
	mode := "wfq"
	if rep.FIFO {
		mode = "fifo"
	}
	for _, ts := range rep.Tenants {
		row := rep.TenantRow(ts.Tenant)
		fmt.Fprintf(w, "tenant %-8s (%s, w=%g): offered %d, admitted %d, shed %d (qf=%d rl=%d bo=%d), degraded %d | modeled p50 %.0fms p95 %.0fms\n",
			ts.Tenant, mode, ts.Weight, ts.Offered, ts.Admitted, ts.Shed(),
			ts.ShedQueueFull, ts.ShedRateLimited, ts.ShedBrownout, ts.Degraded(),
			row.Latency.P50Ms, row.Latency.P95Ms)
	}
	fmt.Fprintf(w, "digests: decisions %s, dispatch %s\n", rep.DecisionDigest, rep.DispatchDigest)
}

// FairnessGateReport is the machine-readable outcome of the fairness
// gate (written by -json in -fairness mode).
type FairnessGateReport struct {
	Seed   uint64 `json:"seed"`
	Victim string `json:"victim"`
	Storm  string `json:"storm"`

	// Modeled victim p95 (ms) solo, protected (QoS on, storm present)
	// and unprotected (FIFO comparator); shed rates likewise.
	VictimP95Solo        float64 `json:"victim_p95_solo_ms"`
	VictimP95Protected   float64 `json:"victim_p95_protected_ms"`
	VictimP95Unprotected float64 `json:"victim_p95_unprotected_ms"`
	VictimShedProtected  float64 `json:"victim_shed_protected"`
	VictimShedFIFO       float64 `json:"victim_shed_unprotected"`

	// Digest pairs (decision/dispatch) for the protected pass, its
	// rerun, and the different-pool-size (+batching) pass.
	DigestsProtected [2]string `json:"digests_protected"`
	DigestsRerun     [2]string `json:"digests_rerun"`
	DigestsPools     [2]string `json:"digests_pools"`

	Passes      []serve.LoadStats `json:"passes"`
	WallSeconds float64           `json:"wall_seconds"`

	// Violations lists every broken invariant; empty means the gate
	// passed.
	Violations []string `json:"violations,omitempty"`
}

// runFairness executes the gate and returns an error (after printing the
// report and the reproduction line) if any invariant broke.
func runFairness(o options, out *os.File) error {
	victims, err := parseTenants(fairVictim, "", o.mix)
	if err != nil {
		return err
	}
	both, err := parseTenants(fairVictim+";"+fairStorm, "", o.mix)
	if err != nil {
		return err
	}
	victimName, stormName := victims[0].name, both[1].name
	mach, err := machineByName(o.machine)
	if err != nil {
		return err
	}
	suite, err := core.NewSuite()
	if err != nil {
		return err
	}
	rep := FairnessGateReport{Seed: o.seed, Victim: victimName, Storm: stormName}
	start := time.Now()
	gatePass := func(label string, tenants []tenantSpec, pc qosPassConfig) (serve.LoadStats, error) {
		pc.drainTPS = fairDrainTPS
		pc.capacityTK = fairCapacityTK
		// Lowered ladder: the shed rung at 0.7 leaves 1800 tokens of
		// headroom above it — more than the largest storm admission
		// (~857) plus the largest victim request (~881) — so an in-quota
		// victim can never be queue-full shed while brownout holds the
		// storm at the rung.
		pc.ladder = qos.Ladder{HedgeOffAt: 0.3, BatchCapAt: 0.45, DropDBAt: 0.6, ShedAt: 0.7}
		st, err := runQoSPass(o, suite, mach, tenants, label, pc)
		if err != nil {
			return st, err
		}
		printStats(out, st)
		printFairness(out, st.Fairness)
		rep.Passes = append(rep.Passes, st)
		return st, nil
	}

	solo, err := gatePass("solo", victims, qosPassConfig{msaWorkers: o.msaWorkers})
	if err != nil {
		return err
	}
	prot, err := gatePass("protected", both, qosPassConfig{msaWorkers: o.msaWorkers})
	if err != nil {
		return err
	}
	rerun, err := gatePass("rerun", both, qosPassConfig{msaWorkers: o.msaWorkers})
	if err != nil {
		return err
	}
	// The pool-size pass shrinks the MSA pool to one worker and turns on
	// cross-request batching: neither may move a single admission or
	// dispatch decision.
	pools, err := gatePass("pools", both, qosPassConfig{msaWorkers: 1, batch: serve.BatchConfig{Enabled: true}})
	if err != nil {
		return err
	}
	fifo, err := gatePass("fifo", both, qosPassConfig{fifo: true, msaWorkers: o.msaWorkers})
	if err != nil {
		return err
	}
	rep.WallSeconds = time.Since(start).Seconds()

	shedRate := func(st serve.LoadStats, tenant string) float64 {
		ts := st.Fairness.Stats(tenant)
		if ts.Offered == 0 {
			return 0
		}
		return float64(ts.Shed()) / float64(ts.Offered)
	}
	rep.VictimP95Solo = solo.Fairness.TenantRow(victimName).Latency.P95Ms
	rep.VictimP95Protected = prot.Fairness.TenantRow(victimName).Latency.P95Ms
	rep.VictimP95Unprotected = fifo.Fairness.TenantRow(victimName).Latency.P95Ms
	rep.VictimShedProtected = shedRate(prot, victimName)
	rep.VictimShedFIFO = shedRate(fifo, victimName)
	rep.DigestsProtected = [2]string{prot.Fairness.DecisionDigest, prot.Fairness.DispatchDigest}
	rep.DigestsRerun = [2]string{rerun.Fairness.DecisionDigest, rerun.Fairness.DispatchDigest}
	rep.DigestsPools = [2]string{pools.Fairness.DecisionDigest, pools.Fairness.DispatchDigest}

	violate := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	p95Bound := fairP95Slack * rep.VictimP95Solo
	if rep.VictimP95Solo <= 0 {
		violate("victim solo baseline produced no completed requests")
	}
	if rep.VictimP95Protected > p95Bound {
		violate("protected victim p95 %.0fms exceeds %.1fx solo baseline %.0fms",
			rep.VictimP95Protected, fairP95Slack, rep.VictimP95Solo)
	}
	if rep.VictimShedProtected >= fairShedMax {
		violate("protected victim shed rate %.1f%% >= %.0f%%",
			100*rep.VictimShedProtected, 100*fairShedMax)
	}
	if sts := prot.Fairness.Stats(stormName); sts.Shed()+sts.Degraded() == 0 {
		violate("storm tenant was never shed or degraded under 10x offered load (QoS idle)")
	}
	// The comparator must demonstrably violate BOTH bounds — otherwise
	// the gate is not proving protection, just measuring noise.
	if rep.VictimP95Unprotected <= p95Bound {
		violate("FIFO comparator victim p95 %.0fms within the protected bound %.0fms (storm too weak)",
			rep.VictimP95Unprotected, p95Bound)
	}
	if rep.VictimShedFIFO < fairShedMax {
		violate("FIFO comparator victim shed rate %.1f%% under %.0f%% (storm too weak)",
			100*rep.VictimShedFIFO, 100*fairShedMax)
	}
	if rep.DigestsRerun != rep.DigestsProtected {
		violate("rerun digests diverged: %v vs %v", rep.DigestsRerun, rep.DigestsProtected)
	}
	if rep.DigestsPools != rep.DigestsProtected {
		violate("pool-size/batching digests diverged: %v vs %v", rep.DigestsPools, rep.DigestsProtected)
	}

	fmt.Fprintf(out, "fairness seed %d: victim p95 solo %.0fms, protected %.0fms (%.2fx), fifo %.0fms (%.2fx) | victim shed protected %.1f%%, fifo %.1f%% | %.1fs wall\n",
		o.seed, rep.VictimP95Solo, rep.VictimP95Protected, ratio(rep.VictimP95Protected, rep.VictimP95Solo),
		rep.VictimP95Unprotected, ratio(rep.VictimP95Unprotected, rep.VictimP95Solo),
		100*rep.VictimShedProtected, 100*rep.VictimShedFIFO, rep.WallSeconds)
	for _, v := range rep.Violations {
		fmt.Fprintf(out, "fairness VIOLATION: %s\n", v)
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("fairness gate FAILED (%d violations); reproduce with: afload -fairness -seed %d",
			len(rep.Violations), o.seed)
	}
	fmt.Fprintf(out, "fairness: all invariants held (seed %d)\n", o.seed)
	return nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
