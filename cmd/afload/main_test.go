package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"afsysbench/internal/serve"
)

func TestParseMix(t *testing.T) {
	samples, weights, err := parseMix("promo:1,1YY9:9")
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0] != "promo" || weights[1] != 9 {
		t.Fatalf("mix = %v %v", samples, weights)
	}
	// Bare names default to weight 1.
	samples, weights, err = parseMix("2PV7")
	if err != nil || weights[0] != 1 || samples[0] != "2PV7" {
		t.Fatalf("bare mix = %v %v (%v)", samples, weights, err)
	}
	for _, bad := range []string{"", "a:0", "a:-1", "a:x"} {
		if _, _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

func TestBuildTraceDeterministic(t *testing.T) {
	samples, weights, err := parseMix("promo:1,1YY9:9")
	if err != nil {
		t.Fatal(err)
	}
	a := buildTrace(samples, weights, 50, 7)
	b := buildTrace(samples, weights, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// The weights steer the draw: 1YY9 must dominate a 1:9 mix.
	counts := map[string]int{}
	for _, s := range a {
		counts[s]++
	}
	if counts["1YY9"] <= counts["promo"] {
		t.Fatalf("mix weights ignored: %v", counts)
	}
	// A different seed reshuffles.
	c := buildTrace(samples, weights, 50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence the trace")
	}
}

func TestParseFlagsValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-n", "0"}); err == nil {
		t.Fatal("-n 0 accepted")
	}
	if _, err := parseFlags([]string{"-addr", "http://x", "-compare-cache"}); err == nil {
		t.Fatal("-compare-cache with -addr accepted")
	}
}

// TestEndToEndComparison runs a small in-process comparison and checks the
// report invariants the serve-bench target relies on: a repeat-heavy mix
// hits the cache and the cached pass beats the uncached one.
func TestEndToEndComparison(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	err = run([]string{
		"-n", "6", "-concurrency", "2", "-mix", "1YY9:1",
		"-threads", "4", "-msa-workers", "2",
		"-compare-cache", "-json", jsonPath,
	}, devnull)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.WithCache == nil || rep.NoCache == nil {
		t.Fatal("report missing a pass")
	}
	if rep.WithCache.Completed != 6 || rep.NoCache.Completed != 6 {
		t.Fatalf("incomplete passes: %+v / %+v", rep.WithCache, rep.NoCache)
	}
	// One distinct query, six requests: five of six served by the cache.
	if rep.WithCache.CacheHitRate < 0.8 {
		t.Fatalf("hit rate = %v", rep.WithCache.CacheHitRate)
	}
	if rep.WithCache.Throughput <= rep.NoCache.Throughput {
		t.Fatalf("cache did not buy throughput: %.2f vs %.2f req/s",
			rep.WithCache.Throughput, rep.NoCache.Throughput)
	}
	if rep.ThroughputSpeedup <= 1 {
		t.Fatalf("speedup = %v", rep.ThroughputSpeedup)
	}
	if rep.WithCache.ModeledSerial <= rep.WithCache.ModeledMakespan {
		t.Fatalf("modeled schedule not better than serial: %+v", rep.WithCache)
	}
}
