package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"afsysbench/internal/serve"
)

func TestParseMix(t *testing.T) {
	samples, weights, err := parseMix("promo:1,1YY9:9")
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0] != "promo" || weights[1] != 9 {
		t.Fatalf("mix = %v %v", samples, weights)
	}
	// Bare names default to weight 1.
	samples, weights, err = parseMix("2PV7")
	if err != nil || weights[0] != 1 || samples[0] != "2PV7" {
		t.Fatalf("bare mix = %v %v (%v)", samples, weights, err)
	}
	for _, bad := range []string{"", "a:0", "a:-1", "a:x"} {
		if _, _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

func TestBuildTraceDeterministic(t *testing.T) {
	samples, weights, err := parseMix("promo:1,1YY9:9")
	if err != nil {
		t.Fatal(err)
	}
	a := buildTrace(samples, weights, 50, 7)
	b := buildTrace(samples, weights, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
	// The weights steer the draw: 1YY9 must dominate a 1:9 mix.
	counts := map[string]int{}
	for _, s := range a {
		counts[s]++
	}
	if counts["1YY9"] <= counts["promo"] {
		t.Fatalf("mix weights ignored: %v", counts)
	}
	// A different seed reshuffles.
	c := buildTrace(samples, weights, 50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not influence the trace")
	}
}

func TestParseFlagsValidation(t *testing.T) {
	if _, err := parseFlags([]string{"-n", "0"}); err == nil {
		t.Fatal("-n 0 accepted")
	}
	if _, err := parseFlags([]string{"-addr", "http://x", "-compare-cache"}); err == nil {
		t.Fatal("-compare-cache with -addr accepted")
	}
	if _, err := parseFlags([]string{"-addr", "http://x", "-cache-dir", "/tmp/x"}); err == nil {
		t.Fatal("-cache-dir with -addr accepted")
	}
	if _, err := parseFlags([]string{"-warm"}); err == nil {
		t.Fatal("-warm without -cache-dir accepted")
	}
	if _, err := parseFlags([]string{"-ppi", "999"}); err == nil {
		t.Fatal("-ppi beyond the pool accepted")
	}
	// The chaos gates are mutually exclusive and each drives its own trace:
	// flags the gate would silently ignore must be rejected, not swallowed.
	if _, err := parseFlags([]string{"-chaos", "-chaos-disk"}); err == nil {
		t.Fatal("-chaos with -chaos-disk accepted")
	}
	for _, extra := range [][]string{
		{"-ppi", "4"}, {"-cache-dir", "/tmp/x"}, {"-warm"}, {"-compare-cache"},
	} {
		if _, err := parseFlags(append([]string{"-chaos"}, extra...)); err == nil {
			t.Fatalf("-chaos with %v accepted (the fault storm ignores it)", extra)
		}
	}
	if _, err := parseFlags([]string{"-chaos-disk", "-warm"}); err == nil {
		t.Fatal("-chaos-disk with -warm accepted")
	}
	if _, err := parseFlags([]string{"-chaos-disk", "-compare-cache"}); err == nil {
		t.Fatal("-chaos-disk with -compare-cache accepted")
	}
	// But -chaos-disk really does consume -ppi and -cache-dir.
	if _, err := parseFlags([]string{"-chaos-disk", "-ppi", "4", "-cache-dir", "/tmp/x"}); err != nil {
		t.Fatalf("-chaos-disk with -ppi/-cache-dir rejected: %v", err)
	}
	// Cache-dependent modes need the memory tier in front of them.
	if _, err := parseFlags([]string{"-compare-cache", "-cache-mb", "0"}); err == nil {
		t.Fatal("-compare-cache with -cache-mb 0 accepted")
	}
	if _, err := parseFlags([]string{"-cache-dir", "/tmp/x", "-cache-mb", "0"}); err == nil {
		t.Fatal("-cache-dir with -cache-mb 0 accepted")
	}
	// -ppi overrides the trace shape: explicitly set -mix/-n must error
	// instead of being silently discarded, while the defaults pass.
	if _, err := parseFlags([]string{"-ppi", "4", "-mix", "promo:1"}); err == nil {
		t.Fatal("-ppi with explicit -mix accepted")
	}
	if _, err := parseFlags([]string{"-ppi", "4", "-n", "50"}); err == nil {
		t.Fatal("-ppi with explicit -n accepted")
	}
	if _, err := parseFlags([]string{"-ppi", "4"}); err != nil {
		t.Fatalf("-ppi with default -mix/-n rejected: %v", err)
	}
}

func TestBuildPPITrace(t *testing.T) {
	a, err := buildPPITrace(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 { // all unordered pairs over 4 proteins, homodimers included
		t.Fatalf("trace length = %d, want 10", len(a))
	}
	b, err := buildPPITrace(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ppi trace not deterministic at %d", i)
		}
		if seen[a[i]] {
			t.Fatalf("duplicate pair %s", a[i])
		}
		seen[a[i]] = true
	}
	c, err := buildPPITrace(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed does not shuffle the ppi trace")
	}
}

// TestEndToEndComparison runs a small in-process comparison and checks the
// report invariants the serve-bench target relies on: a repeat-heavy mix
// hits the cache and the cached pass beats the uncached one.
func TestEndToEndComparison(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	err = run([]string{
		"-n", "6", "-concurrency", "2", "-mix", "1YY9:1",
		"-threads", "4", "-msa-workers", "2",
		"-compare-cache", "-json", jsonPath,
	}, devnull)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.WithCache == nil || rep.NoCache == nil {
		t.Fatal("report missing a pass")
	}
	if rep.WithCache.Completed != 6 || rep.NoCache.Completed != 6 {
		t.Fatalf("incomplete passes: %+v / %+v", rep.WithCache, rep.NoCache)
	}
	// One distinct query, six requests: five of six served by the cache.
	if rep.WithCache.CacheHitRate < 0.8 {
		t.Fatalf("hit rate = %v", rep.WithCache.CacheHitRate)
	}
	if rep.WithCache.Throughput <= rep.NoCache.Throughput {
		t.Fatalf("cache did not buy throughput: %.2f vs %.2f req/s",
			rep.WithCache.Throughput, rep.NoCache.Throughput)
	}
	if rep.ThroughputSpeedup <= 1 {
		t.Fatalf("speedup = %v", rep.ThroughputSpeedup)
	}
	if rep.WithCache.ModeledSerial <= rep.WithCache.ModeledMakespan {
		t.Fatalf("modeled schedule not better than serial: %+v", rep.WithCache)
	}
}

// TestWarmTwoTierPPI runs the serve-bench shape end to end: a PPI screen
// over a warmed disk tier with the request-keyed baseline, checking the
// two-tier accounting the BENCH_serve.json artifact reports.
func TestWarmTwoTierPPI(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	err = run([]string{
		"-ppi", "4", "-concurrency", "2",
		"-threads", "2", "-msa-workers", "2",
		"-cache-dir", filepath.Join(dir, "tier"),
		"-warm", "-compare-cache", "-json", jsonPath,
	}, devnull)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep serve.LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Warm == nil || rep.WithCache == nil || rep.Baseline == nil {
		t.Fatal("report missing a pass")
	}
	// The warm pass computed each of the 4 pool chains once and shared
	// the remaining lookups in memory.
	if rep.Warm.ChainFresh != 4 || rep.Warm.ChainMemHits == 0 {
		t.Fatalf("warm pass chains: %+v", rep.Warm)
	}
	// The measured pass starts with a cold memory tier over a warm disk:
	// nothing is computed fresh, and the disk serves each chain's first
	// sighting.
	if rep.WithCache.ChainFresh != 0 || rep.WithCache.ChainDiskHits != 4 {
		t.Fatalf("measured pass chains: %+v", rep.WithCache)
	}
	if rep.WithCache.Disk == nil || rep.WithCache.Disk.Hits < 4 {
		t.Fatalf("disk stats: %+v", rep.WithCache.Disk)
	}
	// Every pair in the all-vs-all trace is distinct, so request-keyed
	// caching shares nothing and chain keys must win the modeled
	// makespan.
	if rep.Baseline.ChainMemHits != 0 || rep.Baseline.ChainDiskHits != 0 {
		t.Fatalf("request-keyed baseline shared chains: %+v", rep.Baseline)
	}
	if rep.MakespanImprovement <= 1 {
		t.Fatalf("makespan improvement = %v", rep.MakespanImprovement)
	}
}

// TestChaosDiskGate runs the full disk-fault chaos sequence at the same
// shape as the `make chaos-disk` target, just smaller.
func TestChaosDiskGate(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	err = run([]string{
		"-chaos-disk", "-seed", "11", "-ppi", "3",
		"-concurrency", "2", "-threads", "2", "-msa-workers", "2",
	}, devnull)
	if err != nil {
		t.Fatalf("chaos-disk gate failed: %v", err)
	}
}
