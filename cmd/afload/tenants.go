package main

// Tenant trace synthesis for the QoS modes (-qos, -fairness): each tenant
// gets its own deterministic sample trace and arrival-time series (shaped
// by the adversarial generators in internal/qos), and the per-tenant
// streams merge into one arrival-ordered event trace. Everything is a
// pure function of (seed, tenant spec), so two runs — at any pool size —
// submit the identical sequence.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"afsysbench/internal/inputs"
	"afsysbench/internal/qos"
	"afsysbench/internal/rng"
)

// tenantSpec is one tenant's full load description: its QoS quota plus
// the trace it offers.
type tenantSpec struct {
	name string
	qos  qos.TenantConfig
	// rps is the tenant's mean arrival rate (requests per modeled
	// second); n its request count; shape its arrival shape; mix its
	// weighted sample mix.
	rps   float64
	n     int
	shape string
	mix   string
}

// parseTenants parses the -tenants spec: semicolon-separated tenants,
// each "name:k=v,k=v" with quota keys w= (WFQ weight), r= (token-bucket
// rate), b= (burst) and trace keys rps= (mean arrival rate), n= (request
// count), shape= (arrival shape), mix= (sample mix, '|'-separated, e.g.
// mix=2PV7:3|7RCE:2). Omitted trace keys fall back to defShape/defMix
// and the stock rps/n defaults.
func parseTenants(spec, defShape, defMix string) ([]tenantSpec, error) {
	var out []tenantSpec
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-tenants entry %q has no name", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate tenant %q in -tenants", name)
		}
		seen[name] = true
		t := tenantSpec{name: name, rps: 0.5, n: 20, shape: defShape, mix: defMix}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, vs, ok := strings.Cut(kv, "=")
			if !ok || k == "" || vs == "" {
				return nil, fmt.Errorf("tenant %q: bad attribute %q (want k=v)", name, kv)
			}
			switch k {
			case "w", "r", "b":
				v, err := strconv.ParseFloat(vs, 64)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("tenant %q: bad value in %q", name, kv)
				}
				switch k {
				case "w":
					t.qos.Weight = v
				case "r":
					t.qos.Rate = v
				case "b":
					t.qos.Burst = v
				}
			case "rps":
				v, err := strconv.ParseFloat(vs, 64)
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("tenant %q: rps must be positive in %q", name, kv)
				}
				t.rps = v
			case "n":
				v, err := strconv.Atoi(vs)
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("tenant %q: n must be positive in %q", name, kv)
				}
				t.n = v
			case "shape":
				t.shape = vs
			case "mix":
				t.mix = strings.ReplaceAll(vs, "|", ",")
			default:
				return nil, fmt.Errorf("tenant %q: unknown attribute %q (want w=, r=, b=, rps=, n=, shape=, mix=)", name, k)
			}
		}
		if err := validShape(t.shape); err != nil {
			return nil, fmt.Errorf("tenant %q: %v", name, err)
		}
		samples, _, err := parseMix(t.mix)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %v", name, err)
		}
		// Resolve every mix sample now: a typo should fail the flag parse,
		// not the thousandth submission of a long trace.
		for _, sample := range samples {
			if _, err := inputs.ByName(sample); err != nil {
				return nil, fmt.Errorf("tenant %q: %v", name, err)
			}
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -tenants spec")
	}
	return out, nil
}

// validShape checks an arrival-shape name ("" means uniform).
func validShape(shape string) error {
	if shape == "" {
		return nil
	}
	for _, s := range qos.Shapes {
		if shape == s {
			return nil
		}
	}
	return fmt.Errorf("unknown arrival shape %q (want one of %v)", shape, qos.Shapes)
}

// quotaMap extracts the qos.Config tenant quotas from the parsed specs.
func quotaMap(tenants []tenantSpec) map[string]qos.TenantConfig {
	out := make(map[string]qos.TenantConfig, len(tenants))
	for _, t := range tenants {
		out[t.name] = t.qos
	}
	return out
}

// qosEvent is one submission of the merged tenant trace.
type qosEvent struct {
	tenant  string
	sample  string
	arrival float64 // modeled seconds
}

// tenantSubSeed derives a stable per-tenant RNG lane from the suite seed
// and the tenant name.
func tenantSubSeed(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}

// buildTenantEvents synthesizes each tenant's (sample, arrival) stream
// and merges them in arrival order (ties break by tenant name, then
// index, keeping the merge deterministic).
func buildTenantEvents(tenants []tenantSpec, seed uint64) ([]qosEvent, error) {
	var events []qosEvent
	for _, t := range tenants {
		samples, weights, err := parseMix(t.mix)
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %v", t.name, err)
		}
		sub := tenantSubSeed(t.name)
		trace := buildTrace(samples, weights, t.n, seed^sub)
		arrivals, err := qos.Arrivals(t.shape, t.n, t.rps, rng.New(seed).Split(sub))
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %v", t.name, err)
		}
		for i := range trace {
			events = append(events, qosEvent{tenant: t.name, sample: trace[i], arrival: arrivals[i]})
		}
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].arrival != events[b].arrival {
			return events[a].arrival < events[b].arrival
		}
		return events[a].tenant < events[b].tenant
	})
	return events, nil
}
