// Chaos mode: afload -chaos drives a seeded fault storm through a live
// in-process scheduler and asserts the serving layer's fault-tolerance
// invariants instead of measuring throughput. The storm combines injected
// worker panics (via serve.Config.PanicHook) at all three guard points,
// once-per-chain search faults that force checkpointed stage retries, a
// permanently dark database that must trip its circuit breaker, and
// aggressive chain hedging — all derived deterministically from -seed so a
// failure reproduces with the same flag line.
//
// Invariants checked after the storm:
//
//   - every admitted job reached a terminal state (nothing stuck between
//     the MSA and GPU pools);
//   - every failure carries a known error class, and at least one job
//     failed with class "panic";
//   - both worker pools are at full strength (no worker goroutine died
//     with a panicking job);
//   - the dark database's breaker tripped (breaker_to_open >= 1) and later
//     requests were annotated partial_msa;
//   - checkpointed retries happened (chains were replayed, not recomputed);
//   - after Stop, goroutines return to the pre-storm baseline (no leaks).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"afsysbench/internal/core"
	"afsysbench/internal/resilience"
	"afsysbench/internal/rng"
	"afsysbench/internal/serve"
)

// chaosFaultSpec is the storm's fault mix: every chain search faults once
// (forcing a checkpointed retry per chain), uniref_s fails transiently with
// a two-fault budget per job (exercising the in-stage retry ladder), and
// mgnify_s is permanently dark (exhausting retries, degrading results and
// feeding its breaker until it trips).
const chaosFaultSpec = "chainfault:*:1,transient:uniref_s:2,permanent:mgnify_s"

// chaosPanicPoints cycles panic injection across the three worker guard
// points; "msa" and "inference" fire at stage start, "handoff" between the
// MSA success and the GPU queue send — the historical job-loss window.
var chaosPanicPoints = []string{"msa", "handoff", "inference"}

// ChaosReport is the machine-readable outcome of one storm (written by
// -json in chaos mode).
type ChaosReport struct {
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`

	Done           int              `json:"done"`
	Failed         int              `json:"failed"`
	FailedByClass  map[string]int   `json:"failed_by_class,omitempty"`
	PartialMSA     int              `json:"partial_msa"`
	PanicsPlanned  int              `json:"panics_planned"`
	WorkerPanics   int64            `json:"worker_panics"`
	BreakerTrips   int64            `json:"breaker_trips"`
	StageRetries   int64            `json:"msa_stage_retries"`
	ChainsRestored int64            `json:"msa_chains_restored"`
	Hedges         int64            `json:"msa_hedges"`
	PoolHealth     serve.PoolHealth `json:"pool_health"`
	WallSeconds    float64          `json:"wall_seconds"`

	// Violations lists every broken invariant; empty means the storm
	// passed.
	Violations []string `json:"violations,omitempty"`
}

// chaosPanicPlan deterministically picks the ordinals that panic and the
// guard point each fires at. Roughly one request in twelve panics, at least
// two overall, and ordinal 0 always panics at "msa" so even the smallest
// storm proves panic isolation.
func chaosPanicPlan(n int, seed uint64) map[int]string {
	src := rng.New(seed).Split(0xC4A05)
	count := n/12 + 2
	plan := map[int]string{0: "msa"}
	for i := 1; len(plan) < count && i < 64*count; i++ {
		ord := src.Split(uint64(i)).Intn(n)
		if _, dup := plan[ord]; dup {
			continue
		}
		plan[ord] = chaosPanicPoints[len(plan)%len(chaosPanicPoints)]
	}
	return plan
}

// runChaos executes the storm and returns an error (after printing the
// report and the reproduction line) if any invariant broke.
func runChaos(o options, out *os.File) error {
	samples, weights, err := parseMix(o.mix)
	if err != nil {
		return err
	}
	trace := buildTrace(samples, weights, o.n, o.seed)
	faults, err := resilience.ParseFaults(chaosFaultSpec)
	if err != nil {
		return err
	}
	mach, err := machineByName(o.machine)
	if err != nil {
		return err
	}
	suite, err := core.NewSuite()
	if err != nil {
		return err
	}
	plan := chaosPanicPlan(o.n, o.seed)

	// Warm the process-wide compute pools so the goroutine baseline below
	// measures only the chaos server's goroutines.
	warm := serve.NewWithSuite(suite, serve.Config{Threads: o.threads, MSAWorkers: 2, GPUWorkers: 1})
	warm.Start()
	warmID, err := warm.Submit(serve.Request{Sample: trace[0]})
	if err != nil {
		return err
	}
	if _, err := (inprocTarget{s: warm}).wait(warmID); err != nil {
		return err
	}
	warm.Stop()
	baseline := runtime.NumGoroutine()

	s := serve.NewWithSuite(suite, serve.Config{
		Machine:          mach,
		Threads:          o.threads,
		MSAWorkers:       o.msaWorkers,
		GPUWorkers:       o.gpuWorkers,
		QueueDepth:       o.queue,
		Cache:            nil, // every request pays its search: maximum fault surface
		Faults:           faults,
		MSAAttempts:      4, // chainfault:*:1 needs one retry per distinct chain
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		Hedge:            serve.HedgeConfig{Enabled: true, Percentile: 50, Factor: 0.5, MinSamples: 4},
		PanicHook: func(point string, ordinal int) {
			if plan[ordinal] == point {
				panic(fmt.Sprintf("chaos: injected %s panic (ordinal %d)", point, ordinal))
			}
		},
	})
	s.Start()
	start := time.Now()
	drive(inprocTarget{s: s}, trace, o.concurrency, o.threads)

	rep := ChaosReport{
		Seed:          o.seed,
		Requests:      o.n,
		PanicsPlanned: len(plan),
		FailedByClass: map[string]int{},
		WallSeconds:   time.Since(start).Seconds(),
	}
	statuses := s.Statuses()
	for _, st := range statuses {
		switch st.State {
		case "done":
			rep.Done++
			if st.PartialMSA {
				rep.PartialMSA++
			}
		case "failed":
			rep.Failed++
			rep.FailedByClass[st.ErrorClass]++
		default:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("job %s stuck in state %q", st.ID, st.State))
		}
	}
	m := s.Metrics()
	rep.WorkerPanics = m.Get("worker_panics")
	rep.BreakerTrips = m.Get("breaker_to_open")
	rep.StageRetries = m.Get("msa_stage_retries")
	rep.ChainsRestored = m.Get("msa_chains_restored")
	rep.Hedges = m.Get("msa_hedges")
	rep.PoolHealth = s.PoolHealth()

	if len(statuses) != o.n {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("admitted %d of %d requests (chaos storms must not shed; raise -queue or lower -concurrency)", len(statuses), o.n))
	}
	if !rep.PoolHealth.FullStrength() {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("worker pool lost goroutines: %+v", rep.PoolHealth))
	}
	if rep.WorkerPanics < 1 {
		rep.Violations = append(rep.Violations, "no worker panic fired (panic plan missed)")
	}
	if rep.FailedByClass["panic"] < 1 {
		rep.Violations = append(rep.Violations, "no job failed with class \"panic\"")
	}
	for class := range rep.FailedByClass {
		switch class {
		case "panic", "timeout", "oom", "overloaded-queue-full",
			"overloaded-rate-limited", "overloaded-brownout", "fault", "error":
		default:
			rep.Violations = append(rep.Violations, fmt.Sprintf("unknown error class %q", class))
		}
	}
	if rep.BreakerTrips < 1 {
		rep.Violations = append(rep.Violations, "dark database never tripped its breaker")
	}
	if rep.ChainsRestored < 1 {
		rep.Violations = append(rep.Violations, "no chain was replayed from a checkpoint")
	}

	s.Stop()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(leakDeadline) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("goroutine leak: baseline %d, after Stop %d", baseline, runtime.NumGoroutine()))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	printChaos(out, rep)
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.jsonPath)
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("chaos storm FAILED (%d violations); reproduce with: afload -chaos -seed %d -n %d -concurrency %d -mix %s",
			len(rep.Violations), o.seed, o.n, o.concurrency, o.mix)
	}
	fmt.Fprintf(out, "chaos: all invariants held (seed %d)\n", o.seed)
	return nil
}

func printChaos(w *os.File, rep ChaosReport) {
	fmt.Fprintf(w, "chaos seed %d: %d req in %.1fs | %d done (%d partial_msa), %d failed | %d/%d planned panics fired | breaker trips %d, stage retries %d, chains restored %d, hedges %d\n",
		rep.Seed, rep.Requests, rep.WallSeconds, rep.Done, rep.PartialMSA, rep.Failed,
		rep.WorkerPanics, rep.PanicsPlanned, rep.BreakerTrips, rep.StageRetries, rep.ChainsRestored, rep.Hedges)
	if len(rep.FailedByClass) > 0 {
		classes := make([]string, 0, len(rep.FailedByClass))
		for c := range rep.FailedByClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprintf(w, "chaos failures by class:")
		for _, c := range classes {
			fmt.Fprintf(w, " %s=%d", c, rep.FailedByClass[c])
		}
		fmt.Fprintln(w)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "chaos VIOLATION: %s\n", v)
	}
}
