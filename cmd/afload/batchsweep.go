package main

// The -batch-sweep mode: where does cross-request batching move the
// serving tier from compile-dominated to compute-dominated? The paper's
// Figure 8 shows device init + XLA compile taking >75% of GPU time for
// small inputs on the server platform; batching amortizes those fixed
// costs across members, so past some batch size the dispatch is mostly
// real kernel work. The sweep reports that crossover three ways:
//
//   - a modeled curve straight from the simgpu pricing — overhead fraction
//     vs batch size for a representative small input, both for the first
//     dispatch of a bucket (which also pays XLA compile) and the steady
//     state (compiled-graph cache hit);
//   - a measured offered-load sweep — live in-process cold-model servers
//     at increasing closed-loop client counts, reporting the realized mean
//     batch size, aggregate overhead fraction, compile-cache hit rate and
//     padding waste;
//   - a bucket-count sweep — the padding-waste vs compile-sharing tradeoff
//     as the shape policy coarsens from one catch-all bucket to the stock
//     eight.
//
// With -json the whole thing lands as the batch_crossover section of
// BENCH_serve.json (merged into the existing document, afcluster-style).
// The sweep is also a gate: it exits non-zero unless the modeled unbatched
// overhead exceeds 75% (the Figure 8 regime) and batching reaches <50%
// overhead within the memory-footprint batch cap.

import (
	"encoding/json"
	"fmt"
	"os"

	"afsysbench/internal/batch"
	"afsysbench/internal/core"
	"afsysbench/internal/inputs"
	"afsysbench/internal/serve"
	"afsysbench/internal/simgpu"
)

// curvePoint is one batch size on the modeled crossover curve.
type curvePoint struct {
	Batch int `json:"batch"`
	// FirstTotal/FirstOverhead price the bucket's first dispatch: cold
	// container init + XLA compile + batched compute.
	FirstTotal    float64 `json:"first_total_seconds"`
	FirstOverhead float64 `json:"first_overhead_fraction"`
	// SteadyTotal/SteadyOverhead price a compiled-graph cache hit: init
	// per dispatch, no compile.
	SteadyTotal    float64 `json:"steady_total_seconds"`
	SteadyOverhead float64 `json:"steady_overhead_fraction"`
	// PerRequestSeconds is the steady-state amortized member charge.
	PerRequestSeconds float64 `json:"per_request_seconds"`
}

// loadPoint is one offered-load level of the measured sweep.
type loadPoint struct {
	Concurrency    int     `json:"concurrency"`
	MeanBatchSize  float64 `json:"mean_batch_size"`
	Overhead       float64 `json:"overhead_fraction"`
	CompileHitRate float64 `json:"compile_hit_rate"`
	PaddingWaste   float64 `json:"padding_waste_pct"`
	Throughput     float64 `json:"throughput_rps"`
}

// bucketPoint is one shape-policy granularity of the bucket-count sweep.
type bucketPoint struct {
	Buckets       []int   `json:"buckets"`
	BucketCount   int     `json:"bucket_count"`
	PaddingWaste  float64 `json:"padding_waste_pct"`
	CompileMisses uint64  `json:"compile_misses"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	Overhead      float64 `json:"overhead_fraction"`
}

// crossoverSection is the batch_crossover block of BENCH_serve.json.
type crossoverSection struct {
	Machine string `json:"machine"`
	// Sample/Tokens/Bucket identify the representative small input the
	// modeled curve prices; MaxBatch is the memory-footprint cap at that
	// bucket.
	Sample   string `json:"sample"`
	Tokens   int    `json:"tokens"`
	Bucket   int    `json:"bucket"`
	MaxBatch int    `json:"max_batch"`
	// UnbatchedOverhead is the modeled B=1 first-dispatch overhead — the
	// Figure 8 regime the gate requires to exceed 0.75.
	UnbatchedOverhead float64 `json:"unbatched_overhead_fraction"`
	// CrossoverFirst/CrossoverSteady are the smallest batch sizes whose
	// modeled overhead drops below 0.5 (0 = never within the cap).
	CrossoverFirst  int          `json:"crossover_batch_first"`
	CrossoverSteady int          `json:"crossover_batch_steady"`
	ModelCurve      []curvePoint `json:"model_curve"`
	// OfferedLoad is the measured closed-loop sweep; BucketSweep the
	// measured shape-policy granularity sweep.
	OfferedLoad []loadPoint   `json:"offered_load"`
	BucketSweep []bucketPoint `json:"bucket_sweep"`
}

// sweepBucketSets are the shape policies the bucket-count sweep compares:
// one catch-all bucket (max compile sharing, max padding) through the
// stock eight (fine padding, more compiles).
func sweepBucketSets() [][]int {
	return [][]int{
		{2048},
		{512, 2048},
		{256, 512, 1024, 2048},
		batch.DefaultBuckets(),
	}
}

// modelCurve prices the crossover curve for tokens padded to bucket on
// mach, up to the memory-footprint cap (clamped to 16 points).
func modelCurve(suite *core.Suite, o options, bucket, cap int) ([]curvePoint, error) {
	mach, err := machineByName(o.machine)
	if err != nil {
		return nil, err
	}
	hp, err := suite.CompileSim(mach, bucket)
	if err != nil {
		return nil, err
	}
	points := cap
	if points > 16 {
		points = 16
	}
	curve := make([]curvePoint, 0, points)
	for b := 1; b <= points; b++ {
		first, err := simgpu.BatchedInference(mach, suite.Model, bucket, b, simgpu.InferenceOptions{
			Threads: o.threads, CompileSeconds: hp.CompileSeconds,
		})
		if err != nil {
			return nil, err
		}
		steady, err := simgpu.BatchedInference(mach, suite.Model, bucket, b, simgpu.InferenceOptions{
			Threads: o.threads,
		})
		if err != nil {
			return nil, err
		}
		curve = append(curve, curvePoint{
			Batch:             b,
			FirstTotal:        first.Total(),
			FirstOverhead:     first.OverheadFraction(),
			SteadyTotal:       steady.Total(),
			SteadyOverhead:    steady.OverheadFraction(),
			PerRequestSeconds: steady.Total() / float64(b),
		})
	}
	return curve, nil
}

// measuredPass drives one live cold-model batching server and returns its
// batch report plus throughput.
func measuredPass(o options, suite *core.Suite, trace []string, concurrency int, buckets []int) (serve.LoadStats, error) {
	mach, err := machineByName(o.machine)
	if err != nil {
		return serve.LoadStats{}, err
	}
	po := o
	po.concurrency = concurrency
	return runInprocPass(po, suite, mach, trace, fmt.Sprintf("batch-c%d", concurrency), passConfig{
		withCache: true,
		coldModel: true,
		batch:     serve.BatchConfig{Enabled: true, Buckets: buckets, MaxBatch: o.maxBatch},
	})
}

// runBatchSweep is the -batch-sweep entry point.
func runBatchSweep(o options, out *os.File) error {
	suite, err := core.NewSuite()
	if err != nil {
		return err
	}
	mach, err := machineByName(o.machine)
	if err != nil {
		return err
	}

	// The stock afload mix (promo:1,1YY9:9) has no genuinely small input —
	// its smallest complex pads to bucket 1024, where compile is already
	// only half the dispatch. The sweep is about the Figure 8 small-input
	// regime, so when the caller didn't pick a mix, use one dominated by
	// the small monomers.
	mix := o.mix
	if !o.mixSet {
		mix = "2PV7:3,7RCE:2,1YY9:1"
	}
	samples, weights, err := parseMix(mix)
	if err != nil {
		return err
	}
	// The representative input the modeled curve prices is the smallest
	// sample of the mix — the one deepest in the compile-dominated regime.
	in, err := inputs.ByName(samples[0])
	if err != nil {
		return err
	}
	for _, name := range samples[1:] {
		cand, err := inputs.ByName(name)
		if err != nil {
			return err
		}
		if cand.TotalResidues() < in.TotalResidues() {
			in = cand
		}
	}
	tokens := in.TotalResidues()
	bucket := batch.Default().PadTo(tokens)
	cap := suite.Model.MaxBatch(mach, bucket)

	curve, err := modelCurve(suite, o, bucket, cap)
	if err != nil {
		return err
	}
	section := &crossoverSection{
		Machine:           o.machine,
		Sample:            in.Name,
		Tokens:            tokens,
		Bucket:            bucket,
		MaxBatch:          cap,
		UnbatchedOverhead: curve[0].FirstOverhead,
		ModelCurve:        curve,
	}
	for _, p := range curve {
		if section.CrossoverFirst == 0 && p.FirstOverhead < 0.5 {
			section.CrossoverFirst = p.Batch
		}
		if section.CrossoverSteady == 0 && p.SteadyOverhead < 0.5 {
			section.CrossoverSteady = p.Batch
		}
	}
	fmt.Fprintf(out, "batch-sweep %s: %s (%d tokens -> bucket %d), memory cap %d\n",
		o.machine, in.Name, tokens, bucket, cap)
	fmt.Fprintf(out, "  modeled: unbatched overhead %.1f%%; <50%% at batch %d (first dispatch), %d (steady)\n",
		100*section.UnbatchedOverhead, section.CrossoverFirst, section.CrossoverSteady)
	for _, p := range curve {
		fmt.Fprintf(out, "  B=%-3d first %.0fs (%.1f%% overhead) | steady %.0fs (%.1f%% overhead) | %.1fs/request\n",
			p.Batch, p.FirstTotal, 100*p.FirstOverhead, p.SteadyTotal, 100*p.SteadyOverhead, p.PerRequestSeconds)
	}

	// Measured offered-load sweep: one live server per closed-loop client
	// count, stock buckets.
	trace := buildTrace(samples, weights, o.n, o.seed)
	for _, conc := range []int{1, 2, 4, 8} {
		st, err := measuredPass(o, suite, trace, conc, nil)
		if err != nil {
			return err
		}
		b := st.Batch
		if b == nil {
			return fmt.Errorf("batch report missing from measured pass")
		}
		section.OfferedLoad = append(section.OfferedLoad, loadPoint{
			Concurrency:    conc,
			MeanBatchSize:  b.MeanBatchSize,
			Overhead:       b.OverheadFraction,
			CompileHitRate: b.CompileCache.HitRate(),
			PaddingWaste:   b.PaddingWastePct,
			Throughput:     st.Throughput,
		})
		fmt.Fprintf(out, "  load c=%d: mean batch %.2f, overhead %.1f%%, compile hit rate %.0f%%, waste %.1f%%, %.2f req/s\n",
			conc, b.MeanBatchSize, 100*b.OverheadFraction, 100*b.CompileCache.HitRate(), b.PaddingWastePct, st.Throughput)
	}

	// Bucket-count sweep at the flag concurrency: padding waste falls and
	// compile count rises as the policy refines.
	for _, buckets := range sweepBucketSets() {
		st, err := measuredPass(o, suite, trace, o.concurrency, buckets)
		if err != nil {
			return err
		}
		b := st.Batch
		if b == nil {
			return fmt.Errorf("batch report missing from bucket-sweep pass")
		}
		section.BucketSweep = append(section.BucketSweep, bucketPoint{
			Buckets:       b.Buckets,
			BucketCount:   len(b.Buckets),
			PaddingWaste:  b.PaddingWastePct,
			CompileMisses: b.CompileCache.Misses,
			MeanBatchSize: b.MeanBatchSize,
			Overhead:      b.OverheadFraction,
		})
		fmt.Fprintf(out, "  buckets %v: waste %.1f%%, %d compiles, mean batch %.2f, overhead %.1f%%\n",
			b.Buckets, b.PaddingWastePct, b.CompileCache.Misses, b.MeanBatchSize, 100*b.OverheadFraction)
	}

	if o.jsonPath != "" {
		if err := mergeBatchJSON(o.jsonPath, section); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged batch_crossover into %s\n", o.jsonPath)
	}

	// The gate: the sweep must reproduce the Figure 8 regime (>75%
	// overhead unbatched for a small input) and batching must buy its way
	// out of it (<50% overhead at some batch size within the memory cap).
	if section.UnbatchedOverhead <= 0.75 {
		return fmt.Errorf("unbatched overhead %.1f%% does not reach the paper's >75%% small-input regime",
			100*section.UnbatchedOverhead)
	}
	if section.CrossoverFirst == 0 || section.CrossoverSteady == 0 {
		return fmt.Errorf("batching never crossed below 50%% overhead within the memory cap %d", cap)
	}
	fmt.Fprintf(out, "batch-sweep gate: PASS (unbatched %.1f%% > 75%%, crossover at batch %d < cap %d)\n",
		100*section.UnbatchedOverhead, section.CrossoverFirst, cap)
	return nil
}

// mergeBatchJSON folds the batch_crossover section into an existing
// BENCH_serve.json (or creates the file holding just the section).
func mergeBatchJSON(path string, section *crossoverSection) error {
	doc := map[string]any{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	doc["batch_crossover"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
